"""Command-line interface for building and querying compressed string indexes.

The CLI covers the end-to-end workflow of the paper's motivating scenario --
compress a log of strings once, then answer access/rank/select, prefix and
range-analytics queries against the compressed file:

.. code-block:: console

   $ wavelet-trie build access.log -o access.wt --variant append-only
   $ wavelet-trie info access.wt
   $ wavelet-trie access access.wt 0 17 42
   $ wavelet-trie rank access.wt "http://example.com/" --prefix
   $ wavelet-trie positions access.wt "http://ads." --prefix --limit 100
   $ wavelet-trie top access.wt -k 5 --prefix "http://ads."
   $ wavelet-trie distinct access.wt --start 1000 --stop 2000
   $ wavelet-trie append access.wt "http://example.com/new" --save
   $ wavelet-trie delete access.wt 17 42 1000 --save
   $ wavelet-trie tiers access.wt
   $ wavelet-trie compact access.wt --save
   $ wavelet-trie save access.wt -o access.rwt2 --image
   $ wavelet-trie open access.rwt2
   $ wavelet-trie search build access.log -o access.fm --sa-sample 32
   $ wavelet-trie search count access.fm "/checkout" "/cart"
   $ wavelet-trie search locate access.fm "ads.example" --limit 20

Input files are plain text, one string per line (the empty string is a valid
value; trailing newlines are stripped).  Indexes are stored in the
:mod:`repro.storage` container format.  Every command accepts ``--json`` for
machine-readable output.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.bounds import compute_bounds
from repro.analysis.space import wavelet_trie_space_report
from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.dynamic import DynamicWaveletTrie
from repro.core.static import WaveletTrie
from repro.core.tiers import TieredWaveletTrie
from repro.db.doc_store import DocumentStore
from repro.exceptions import ReproError, SerializationError
from repro.storage import IMAGE_MAGIC, load, save, save_image

__all__ = ["main", "build_parser"]

_VARIANTS = {
    "static": WaveletTrie,
    "append-only": AppendOnlyWaveletTrie,
    "dynamic": DynamicWaveletTrie,
    "tiered": TieredWaveletTrie,
}


# ----------------------------------------------------------------------
# Input helpers
# ----------------------------------------------------------------------
def _read_lines(path: str) -> List[str]:
    """Read one value per line (newline stripped, other whitespace kept)."""
    if path == "-":
        return [line.rstrip("\n") for line in sys.stdin]
    with open(path, "r", encoding="utf-8") as handle:
        return [line.rstrip("\n") for line in handle]


def _emit(payload: Dict[str, Any], as_json: bool, lines: Optional[List[str]] = None) -> None:
    """Print either the JSON payload or the human-readable lines."""
    if as_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for line in lines if lines is not None else [f"{k}: {v}" for k, v in payload.items()]:
            print(line)


# ----------------------------------------------------------------------
# Sub-command implementations
# ----------------------------------------------------------------------
def _cmd_build(args: argparse.Namespace) -> int:
    values = _read_lines(args.input)
    variant_cls = _VARIANTS[args.variant]
    if args.variant == "static":
        index = variant_cls(values, bitvector=args.bitvector)
    else:
        index = variant_cls(values)
    written = save(index, args.output)
    raw_bytes = sum(len(value.encode("utf-8")) + 1 for value in values)
    payload = {
        "input": args.input,
        "output": args.output,
        "variant": args.variant,
        "elements": len(index),
        "distinct": index.distinct_count(),
        "raw_bytes": raw_bytes,
        "stored_bytes": written,
        "compression_ratio": round(written / raw_bytes, 3) if raw_bytes else None,
    }
    _emit(
        payload,
        args.json,
        [
            f"indexed {len(index):,} values ({index.distinct_count():,} distinct) "
            f"from {args.input}",
            f"wrote {written:,} bytes to {args.output} "
            f"({payload['compression_ratio']}x of the raw text)"
            if raw_bytes
            else f"wrote {written:,} bytes to {args.output}",
        ],
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    index = load(args.index)
    _require_trie(index)
    values = index.to_list() if args.bounds else None
    report = wavelet_trie_space_report(index)
    payload: Dict[str, Any] = {
        "variant": type(index).__name__,
        "elements": len(index),
        "distinct": index.distinct_count(),
        "nodes": index.node_count(),
        "average_height": round(index.average_height(), 2),
        "measured_bits": report.total_bits,
        "bits_per_element": round(report.bits_per_element(len(index)), 2),
        "space_components": report.components,
    }
    lines = [
        f"variant          : {payload['variant']}",
        f"elements         : {payload['elements']:,}",
        f"distinct values  : {payload['distinct']:,}",
        f"trie nodes       : {payload['nodes']:,}",
        f"average height h̃ : {payload['average_height']}",
        f"measured size    : {payload['measured_bits']:,} bits "
        f"({payload['bits_per_element']} bits/element)",
    ]
    if args.bounds and values is not None:
        bounds = compute_bounds(values)
        payload["bounds"] = bounds.as_dict()
        lines += [
            f"nH0(S)           : {bounds.entropy_bits:,.0f} bits",
            f"LT(Sset)         : {bounds.lt_bits:,.0f} bits",
            f"LB = LT + nH0    : {bounds.lb_bits:,.0f} bits",
            f"measured / LB    : {report.total_bits / bounds.lb_bits:.2f}x"
            if bounds.lb_bits
            else "measured / LB    : n/a",
        ]
    _emit(payload, args.json, lines)
    return 0


def _cmd_access(args: argparse.Namespace) -> int:
    index = load(args.index)
    _require_trie(index)
    results = [{"position": position, "value": index.access(position)} for position in args.positions]
    _emit({"results": results}, args.json, [f"{r['position']}\t{r['value']}" for r in results])
    return 0


def _cmd_rank(args: argparse.Namespace) -> int:
    index = load(args.index)
    _require_trie(index)
    position = len(index) if args.pos is None else args.pos
    if args.prefix:
        count = index.rank_prefix(args.value, position)
    else:
        count = index.rank(args.value, position)
    payload = {"value": args.value, "pos": position, "prefix": args.prefix, "count": count}
    _emit(payload, args.json, [str(count)])
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    index = load(args.index)
    _require_trie(index)
    if args.prefix:
        position = index.select_prefix(args.value, args.occurrence)
    else:
        position = index.select(args.value, args.occurrence)
    payload = {
        "value": args.value,
        "occurrence": args.occurrence,
        "prefix": args.prefix,
        "position": position,
    }
    _emit(payload, args.json, [str(position)])
    return 0


def _cmd_positions(args: argparse.Namespace) -> int:
    index = load(args.index)
    _require_trie(index)
    if args.prefix:
        total = index.count_prefix(args.value)
    else:
        total = index.count(args.value)
    stop = total if args.limit is None else min(args.limit, total)
    indexes = list(range(stop))
    if args.prefix:
        found = index.select_prefix_many(args.value, indexes)
    else:
        found = index.select_many(args.value, indexes)
    payload = {
        "value": args.value,
        "prefix": args.prefix,
        "total": total,
        "positions": found,
    }
    _emit(payload, args.json, [str(position) for position in found])
    return 0


def _cmd_delete(args: argparse.Namespace) -> int:
    index = load(args.index)
    _require_trie(index)
    if not isinstance(index, (DynamicWaveletTrie, TieredWaveletTrie)):
        raise ReproError(
            "this index does not support deletion; rebuild it with "
            "--variant dynamic or --variant tiered"
        )
    removed = index.delete_many(args.positions)
    payload = {
        "deleted": [
            {"position": position, "value": value}
            for position, value in zip(args.positions, removed)
        ],
        "elements": len(index),
        "saved": bool(args.save),
    }
    if args.save:
        save(index, args.index)
    lines = [f"{entry['position']}\t{entry['value']}" for entry in payload["deleted"]]
    lines.append(
        f"deleted {len(removed)} values; the index now holds {len(index):,} elements"
        + ("" if args.save else "  (not saved; pass --save to persist)")
    )
    _emit(payload, args.json, lines)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    index = load(args.index)
    _require_trie(index)
    start = args.start
    stop = len(index) if args.stop is None else args.stop
    results = index.top_k_in_range(start, stop, args.k, args.prefix)
    payload = {
        "start": start,
        "stop": stop,
        "k": args.k,
        "prefix": args.prefix,
        "results": [{"value": value, "count": count} for value, count in results],
    }
    _emit(payload, args.json, [f"{count:8,}  {value}" for value, count in results])
    return 0


def _cmd_distinct(args: argparse.Namespace) -> int:
    index = load(args.index)
    _require_trie(index)
    start = args.start
    stop = len(index) if args.stop is None else args.stop
    results = index.distinct_in_range(start, stop, args.prefix)
    payload = {
        "start": start,
        "stop": stop,
        "prefix": args.prefix,
        "distinct": len(results),
        "results": [{"value": value, "count": count} for value, count in results],
    }
    lines = [f"{len(results)} distinct values in [{start}, {stop})"]
    lines += [f"{count:8,}  {value}" for value, count in results]
    _emit(payload, args.json, lines)
    return 0


def _cmd_append(args: argparse.Namespace) -> int:
    index = load(args.index)
    _require_trie(index)
    if isinstance(index, WaveletTrie):
        raise ReproError(
            "this index is static; rebuild it with --variant append-only or dynamic"
        )
    for value in args.values:
        index.append(value)
    payload = {"appended": len(args.values), "elements": len(index), "saved": bool(args.save)}
    if args.save:
        save(index, args.index)
    _emit(
        payload,
        args.json,
        [
            f"appended {len(args.values)} values; the index now holds {len(index):,} elements"
            + ("" if args.save else "  (not saved; pass --save to persist)")
        ],
    )
    return 0


def _cmd_tiers(args: argparse.Namespace) -> int:
    index = load(args.index)
    _require_trie(index)
    tiered = _require_tiered(index)
    rows = tiered.tier_info()
    payload = {
        "elements": len(tiered),
        "tier_count": tiered.tier_count,
        "mutable_start": tiered.mutable_start,
        "total_bits": tiered.size_in_bits(),
        "tiers": rows,
    }
    lines = [
        f"{len(tiered):,} elements in {tiered.tier_count} tiers "
        f"(mutable window starts at position {tiered.mutable_start:,})"
    ]
    for position, row in enumerate(rows):
        extra = (
            f"  ({row['pending_freeze_bits']:,} bits left to freeze)"
            if "pending_freeze_bits" in row
            else ""
        )
        lines.append(
            f"tier {position}: {row['state']:<8} {row['kind']:<22} "
            f"{row['elements']:>10,} elements  {row['bits']:>12,} bits{extra}"
        )
    _emit(payload, args.json, lines)
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    index = load(args.index)
    _require_trie(index)
    tiered = _require_tiered(index)
    tiers_before = tiered.tier_count
    if args.steps is not None:
        done = tiered.compact_step(args.steps)
        action = f"advanced compaction by {done} block units"
    else:
        tiered.compact(merge=not args.no_merge)
        action = "drained all freezes" + (
            "" if args.no_merge else " and merged the frozen tiers"
        )
    payload = {
        "elements": len(tiered),
        "tiers_before": tiers_before,
        "tiers_after": tiered.tier_count,
        "action": action,
        "saved": bool(args.save),
    }
    if args.save:
        save(tiered, args.index)
    _emit(
        payload,
        args.json,
        [
            f"{action}: {tiers_before} -> {tiered.tier_count} tiers "
            f"({len(tiered):,} elements)"
            + ("" if args.save else "  (not saved; pass --save to persist)")
        ],
    )
    return 0


def _cmd_save(args: argparse.Namespace) -> int:
    index = load(args.index)
    if args.image:
        try:
            written = save_image(index, args.output)
        except SerializationError as error:
            # Not every index has a frozen-image layout (e.g. static tries
            # with RLE node bitvectors); fail with a way out instead of a
            # bare serialisation error.
            print(f"error: {error}", file=sys.stderr)
            print(
                "hint: this index cannot be written as an RWT2 frozen image; "
                "drop --image to save it in the RWT1 logical container, or "
                "rebuild it with `build --variant static --bitvector rrr` "
                "(RWT2 supports rrr/plain static layouts) and re-run save "
                "--image on the result.",
                file=sys.stderr,
            )
            return 1
        container = "RWT2"
    else:
        written = save(index, args.output)
        container = "RWT1"
    payload = {
        "input": args.index,
        "output": args.output,
        "container": container,
        "stored_bytes": written,
    }
    _emit(
        payload,
        args.json,
        [f"wrote {written:,} bytes to {args.output} ({container} container)"],
    )
    return 0


def _cmd_open(args: argparse.Namespace) -> int:
    with open(args.index, "rb") as handle:
        magic = handle.read(len(IMAGE_MAGIC))
    container = "RWT2" if magic == IMAGE_MAGIC else "RWT1"
    started = time.perf_counter()
    index = load(args.index)
    open_ms = (time.perf_counter() - started) * 1000.0
    payload = {
        "index": args.index,
        "container": container,
        "type": type(index).__name__,
        "elements": len(index),
        "open_ms": round(open_ms, 3),
    }
    _emit(
        payload,
        args.json,
        [
            f"opened {args.index} ({container}) in {open_ms:.3f} ms: "
            f"{type(index).__name__} with {len(index):,} elements"
        ],
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.db.column import CompressedColumn
    from repro.serving import IndexServer, ServerConfig

    index = load(args.index)
    _require_trie(index)
    column = CompressedColumn.from_index(args.shard, index)
    if args.socket is None and args.http_port is None:
        raise ReproError("pass --socket PATH and/or --http-port PORT")
    config = ServerConfig(
        unix_path=args.socket,
        http_port=args.http_port,
        coalesce=not args.no_coalesce,
        coalesce_window=args.coalesce_window,
        max_pending=args.max_pending,
        request_timeout=args.timeout,
        compact_budget=args.compact_budget,
    )
    if args.workers is not None:
        return _serve_cluster(args, column, config)

    async def run() -> None:
        server = IndexServer({args.shard: column}, config)
        await server.start()
        lines = [
            f"serving shard {args.shard!r} ({len(column):,} rows, "
            f"coalescing {'on' if config.coalesce else 'off'})"
        ]
        if args.socket is not None:
            lines.append(f"unix socket : {args.socket}")
        if server.http_address is not None:
            host, port = server.http_address
            lines.append(f"http        : http://{host}:{port}  (/stats, /query)")
        _emit({"shard": args.shard, "rows": len(column)}, False, lines)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # non-unix event loops
            pass
        try:
            await stop.wait()
        except KeyboardInterrupt:
            pass
        await server.stop()

    asyncio.run(run())
    return 0


def _serve_cluster(args: argparse.Namespace, column, config) -> int:
    """The ``serve --workers N`` path: shard, fork, supervise."""
    import asyncio
    import signal
    import tempfile

    from repro.serving import ClusterConfig, ClusterSupervisor
    from repro.storage.shards import MANIFEST_NAME, export_shard_images

    if args.workers < 1:
        raise ReproError(f"--workers must be at least 1, got {args.workers}")
    if args.image_dir is not None:
        image_dir = args.image_dir
        manifest_path = os.path.join(image_dir, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            export_shard_images({args.shard: column}, image_dir, args.workers)
    else:
        image_dir = tempfile.mkdtemp(prefix="repro-cluster-")
        export_shard_images({args.shard: column}, image_dir, args.workers)

    async def run() -> None:
        supervisor = ClusterSupervisor(
            config, ClusterConfig(image_dir=image_dir)
        )
        await supervisor.start()
        lines = [
            f"serving shard {args.shard!r} ({len(column):,} rows) across "
            f"{supervisor.num_workers} worker processes (tail owns writes)",
            f"shard images: {image_dir}",
        ]
        if args.socket is not None:
            lines.append(f"unix socket : {args.socket}")
        if supervisor.http_address is not None:
            host, port = supervisor.http_address
            lines.append(f"http        : http://{host}:{port}  (/stats, /query)")
        _emit(
            {
                "shard": args.shard,
                "rows": len(column),
                "workers": supervisor.num_workers,
                "image_dir": image_dir,
            },
            False,
            lines,
        )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # non-unix event loops
            pass
        try:
            await stop.wait()
        except KeyboardInterrupt:
            pass
        await supervisor.stop()

    asyncio.run(run())
    return 0


# ----------------------------------------------------------------------
# Full-text search sub-commands (FM-index document store)
# ----------------------------------------------------------------------
def _cmd_search_build(args: argparse.Namespace) -> int:
    documents = _read_lines(args.input)
    try:
        store = DocumentStore(
            documents, sa_sample=args.sa_sample, bitvector=args.bitvector
        )
    except ValueError as error:
        raise ReproError(str(error))
    written = save(store, args.output)
    raw_bytes = sum(len(doc.encode("utf-8")) + 1 for doc in documents)
    payload = {
        "input": args.input,
        "output": args.output,
        "documents": len(store),
        "text_length": store.text_length,
        "sa_sample": args.sa_sample,
        "index_bits": store.size_in_bits(),
        "raw_bytes": raw_bytes,
        "stored_bytes": written,
    }
    _emit(
        payload,
        args.json,
        [
            f"indexed {len(store):,} documents ({store.text_length:,} characters) "
            f"from {args.input}",
            f"wrote {written:,} bytes to {args.output} "
            f"(sa_sample={args.sa_sample}; raw text was {raw_bytes:,} bytes)",
        ],
    )
    return 0


def _cmd_search_count(args: argparse.Namespace) -> int:
    store = _require_doc_store(load(args.index))
    try:
        counts = store.count_many(args.patterns)
    except ValueError as error:
        raise ReproError(str(error))
    payload = {
        "results": [
            {"pattern": pattern, "count": count}
            for pattern, count in zip(args.patterns, counts)
        ]
    }
    _emit(
        payload,
        args.json,
        [f"{count}\t{pattern}" for pattern, count in zip(args.patterns, counts)],
    )
    return 0


def _cmd_search_locate(args: argparse.Namespace) -> int:
    store = _require_doc_store(load(args.index))
    try:
        matches = store.locate(args.pattern)
    except ValueError as error:
        raise ReproError(str(error))
    total = len(matches)
    if args.limit is not None:
        matches = matches[: args.limit]
    payload = {
        "pattern": args.pattern,
        "total": total,
        "matches": [
            {"document": doc, "offset": offset} for doc, offset in matches
        ],
    }
    lines = [f"{doc}\t{offset}" for doc, offset in matches]
    lines.append(
        f"{total} occurrences"
        + ("" if len(matches) == total else f" (showing the first {len(matches)})")
    )
    _emit(payload, args.json, lines)
    return 0


def _require_doc_store(index: Any) -> DocumentStore:
    if not isinstance(index, DocumentStore):
        raise ReproError(
            f"the file holds a {type(index).__name__}, not a search index; "
            "create one with `search build`"
        )
    return index


def _require_trie(index: Any) -> None:
    if not isinstance(
        index,
        (WaveletTrie, AppendOnlyWaveletTrie, DynamicWaveletTrie, TieredWaveletTrie),
    ):
        raise ReproError(
            f"the file holds a {type(index).__name__}, not a Wavelet Trie index"
        )


def _require_tiered(index: Any) -> TieredWaveletTrie:
    if not isinstance(index, TieredWaveletTrie):
        raise ReproError(
            f"the index is a {type(index).__name__}, not a tiered index; "
            "rebuild it with --variant tiered"
        )
    return index


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The :mod:`argparse` parser for the ``wavelet-trie`` command."""
    parser = argparse.ArgumentParser(
        prog="wavelet-trie",
        description="Build and query compressed indexed sequences of strings (Wavelet Trie).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--json", action="store_true", help="emit JSON instead of text")

    build = subparsers.add_parser("build", help="index a text file (one value per line)")
    build.add_argument("input", help="input text file, or - for stdin")
    build.add_argument("-o", "--output", required=True, help="output index file")
    build.add_argument(
        "--variant",
        choices=sorted(_VARIANTS),
        default="append-only",
        help="which Wavelet Trie variant to build (default: append-only)",
    )
    build.add_argument(
        "--bitvector",
        choices=["rrr", "plain", "rle"],
        default="rrr",
        help="node bitvector for the static variant (default: rrr)",
    )
    add_common(build)
    build.set_defaults(handler=_cmd_build)

    info = subparsers.add_parser("info", help="show size, entropy and space breakdown")
    info.add_argument("index", help="index file produced by `build`")
    info.add_argument(
        "--bounds",
        action="store_true",
        help="also compute the Table 1 information-theoretic bounds (decodes the sequence)",
    )
    add_common(info)
    info.set_defaults(handler=_cmd_info)

    access = subparsers.add_parser("access", help="retrieve the values at given positions")
    access.add_argument("index")
    access.add_argument("positions", nargs="+", type=int)
    add_common(access)
    access.set_defaults(handler=_cmd_access)

    rank = subparsers.add_parser("rank", help="count occurrences of a value (or prefix)")
    rank.add_argument("index")
    rank.add_argument("value")
    rank.add_argument("--pos", type=int, default=None, help="count within the first POS elements")
    rank.add_argument("--prefix", action="store_true", help="treat VALUE as a prefix")
    add_common(rank)
    rank.set_defaults(handler=_cmd_rank)

    select = subparsers.add_parser("select", help="position of the i-th occurrence")
    select.add_argument("index")
    select.add_argument("value")
    select.add_argument("occurrence", type=int)
    select.add_argument("--prefix", action="store_true", help="treat VALUE as a prefix")
    add_common(select)
    select.set_defaults(handler=_cmd_select)

    positions = subparsers.add_parser(
        "positions", help="all positions of a value (or prefix), batch-answered"
    )
    positions.add_argument("index")
    positions.add_argument("value")
    positions.add_argument("--prefix", action="store_true", help="treat VALUE as a prefix")
    positions.add_argument(
        "--limit", type=int, default=None, help="return at most LIMIT positions"
    )
    add_common(positions)
    positions.set_defaults(handler=_cmd_positions)

    delete = subparsers.add_parser(
        "delete", help="delete the values at the given positions (dynamic index)"
    )
    delete.add_argument("index")
    delete.add_argument("positions", nargs="+", type=int)
    delete.add_argument("--save", action="store_true", help="write the shrunk index back to disk")
    add_common(delete)
    delete.set_defaults(handler=_cmd_delete)

    top = subparsers.add_parser("top", help="most frequent values in a position range")
    top.add_argument("index")
    top.add_argument("-k", type=int, default=10)
    top.add_argument("--start", type=int, default=0)
    top.add_argument("--stop", type=int, default=None)
    top.add_argument("--prefix", default=None)
    add_common(top)
    top.set_defaults(handler=_cmd_top)

    distinct = subparsers.add_parser("distinct", help="distinct values in a position range")
    distinct.add_argument("index")
    distinct.add_argument("--start", type=int, default=0)
    distinct.add_argument("--stop", type=int, default=None)
    distinct.add_argument("--prefix", default=None)
    add_common(distinct)
    distinct.set_defaults(handler=_cmd_distinct)

    append = subparsers.add_parser("append", help="append values to a dynamic index")
    append.add_argument("index")
    append.add_argument("values", nargs="+")
    append.add_argument("--save", action="store_true", help="write the grown index back to disk")
    add_common(append)
    append.set_defaults(handler=_cmd_append)

    tiers_cmd = subparsers.add_parser(
        "tiers", help="show the tier layout of a tiered (LSM) index"
    )
    tiers_cmd.add_argument("index", help="index built with --variant tiered")
    add_common(tiers_cmd)
    tiers_cmd.set_defaults(handler=_cmd_tiers)

    compact = subparsers.add_parser(
        "compact", help="drain/merge the tiers of a tiered (LSM) index"
    )
    compact.add_argument("index", help="index built with --variant tiered")
    compact.add_argument(
        "--steps",
        type=int,
        default=None,
        help="advance the in-flight freeze by STEPS block units instead of a full compaction",
    )
    compact.add_argument(
        "--no-merge",
        action="store_true",
        help="freeze all tiers but keep them separate (skip the merge rebuild)",
    )
    compact.add_argument("--save", action="store_true", help="write the index back to disk")
    add_common(compact)
    compact.set_defaults(handler=_cmd_compact)

    save_cmd = subparsers.add_parser(
        "save", help="re-save an index, optionally as an RWT2 frozen image"
    )
    save_cmd.add_argument("index", help="existing index file (either container)")
    save_cmd.add_argument("-o", "--output", required=True, help="output file")
    save_cmd.add_argument(
        "--image",
        action="store_true",
        help="write the RWT2 frozen image (mmap-openable) instead of RWT1",
    )
    add_common(save_cmd)
    save_cmd.set_defaults(handler=_cmd_save)

    open_cmd = subparsers.add_parser(
        "open", help="open an index and report the cold-open latency"
    )
    open_cmd.add_argument("index", help="index file (either container)")
    add_common(open_cmd)
    open_cmd.set_defaults(handler=_cmd_open)

    serve = subparsers.add_parser(
        "serve",
        help="serve an index over a unix socket / localhost HTTP (NDJSON protocol)",
    )
    serve.add_argument("index", help="index file produced by `build`")
    serve.add_argument("--socket", default=None, help="unix socket path (raw NDJSON)")
    serve.add_argument(
        "--http-port",
        type=int,
        default=None,
        help="localhost HTTP port (0 for ephemeral); GET /stats, POST /query",
    )
    serve.add_argument(
        "--shard", default="default", help="shard name clients address (default: default)"
    )
    serve.add_argument(
        "--no-coalesce",
        action="store_true",
        help="serve each request as its own batch (for A/B measurements)",
    )
    serve.add_argument(
        "--coalesce-window",
        type=int,
        default=4,
        help="loop turns the pump waits so concurrent requests join one batch",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="bounded queue depth before `overloaded` backpressure (default: 1024)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-request queue timeout in seconds (default: none)",
    )
    serve.add_argument(
        "--compact-budget",
        type=int,
        default=None,
        help="block units of tiered compaction funded per write tick",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="serve through N sharded worker processes (multi-process cluster)",
    )
    serve.add_argument(
        "--image-dir",
        default=None,
        help="directory for the cluster's shard images / manifest "
        "(reused if it already holds a manifest; default: a temp dir)",
    )
    add_common(serve)
    serve.set_defaults(handler=_cmd_serve)

    search = subparsers.add_parser(
        "search", help="full-text substring search over an FM-index document store"
    )
    search_sub = search.add_subparsers(dest="search_command", required=True)

    search_build = search_sub.add_parser(
        "build", help="index a text file as searchable documents (one per line)"
    )
    search_build.add_argument("input", help="input text file, or - for stdin")
    search_build.add_argument("-o", "--output", required=True, help="output index file")
    search_build.add_argument(
        "--sa-sample",
        type=int,
        default=32,
        help="suffix-array sampling rate: smaller is faster locate, larger index "
        "(default: 32)",
    )
    search_build.add_argument(
        "--bitvector",
        choices=["plain", "rrr"],
        default="plain",
        help="BWT node bitvectors: plain (fast batched ranks) or rrr "
        "(compressed nodes; default: plain)",
    )
    add_common(search_build)
    search_build.set_defaults(handler=_cmd_search_build)

    search_count = search_sub.add_parser(
        "count", help="count substring occurrences across all documents"
    )
    search_count.add_argument("index", help="index file produced by `search build`")
    search_count.add_argument("patterns", nargs="+", help="substring pattern(s)")
    add_common(search_count)
    search_count.set_defaults(handler=_cmd_search_count)

    search_locate = search_sub.add_parser(
        "locate", help="list every (document, offset) where a substring occurs"
    )
    search_locate.add_argument("index", help="index file produced by `search build`")
    search_locate.add_argument("pattern", help="substring pattern")
    search_locate.add_argument(
        "--limit", type=int, default=None, help="show at most LIMIT matches"
    )
    add_common(search_locate)
    search_locate.set_defaults(handler=_cmd_search_locate)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
