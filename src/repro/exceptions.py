"""Exception hierarchy shared by the whole package.

All exceptions raised on purpose by :mod:`repro` derive from
:class:`ReproError`, so callers can catch library errors without also
catching programming errors such as :class:`TypeError`.
"""


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class OutOfBoundsError(ReproError, IndexError):
    """A position, rank or index argument is outside the valid range."""


class ValueNotFoundError(ReproError, KeyError):
    """A queried string/symbol does not occur (enough times) in the sequence."""


class ImmutableStructureError(ReproError):
    """An update operation was attempted on a static (frozen) structure."""


class InvalidOperationError(ReproError):
    """The operation is not supported by this structure variant."""


class DuplicatePositionError(ReproError, ValueError):
    """A batch delete names the same pre-delete position more than once."""


class EncodingError(ReproError, ValueError):
    """A value cannot be encoded/decoded (e.g. gamma code of zero)."""


class BinarizationError(ReproError, ValueError):
    """A string/value cannot be binarised under the chosen codec."""


class SerializationError(ReproError, ValueError):
    """An object cannot be serialised, or a stored payload is malformed."""
