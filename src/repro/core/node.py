"""The node of a Wavelet Trie.

Following Definition 3.1 of the paper, each node carries a label ``alpha``
(the longest common prefix of its subsequence); internal nodes additionally
carry the discriminating bitvector ``beta`` and exactly two children, while
leaves carry only the label.

The node class is shared by the static, append-only and dynamic variants --
they differ only in the type of bitvector stored and in whether the topology
is allowed to change.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bits.bitstring import Bits

__all__ = ["WaveletTrieNode"]


class WaveletTrieNode:
    """One node of a Wavelet Trie (label + optional bitvector + children)."""

    __slots__ = ("label", "bitvector", "children", "parent", "parent_bit")

    def __init__(self, label: Bits, bitvector=None) -> None:
        self.label = label
        self.bitvector = bitvector
        self.children: List[Optional["WaveletTrieNode"]] = [None, None]
        self.parent: Optional["WaveletTrieNode"] = None
        self.parent_bit: int = 0

    @property
    def is_leaf(self) -> bool:
        """True for leaves (no bitvector, no children)."""
        return self.bitvector is None

    def attach(self, bit: int, child: "WaveletTrieNode") -> None:
        """Attach ``child`` as the ``bit``-labelled child and set back-links."""
        self.children[bit] = child
        child.parent = self
        child.parent_bit = bit

    def sequence_length(self, total_size: int) -> int:
        """Length of the subsequence represented by this node.

        For the root this is the full sequence length; for any other node it
        is the number of occurrences of its branching bit in the parent's
        bitvector (the 0s/1s correspondence of the Wavelet Tree).
        """
        if self.parent is None:
            return total_size
        return self.parent.bitvector.count(self.parent_bit)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "leaf" if self.is_leaf else "internal"
        return f"WaveletTrieNode({kind}, label='{self.label.to01()}')"
