"""Range analytics on the Wavelet Trie (paper Section 5).

The mixin implements, over any Wavelet Trie variant (the node interface of
:class:`~repro.core.node.WaveletTrieNode` is all it needs):

* ``iter_range(l, r)`` -- sequential access, one amortised rank per traversed
  node instead of one per element;
* ``distinct_in_range(l, r)`` -- the distinct values (with their counts)
  occurring in a position range, optionally restricted to a prefix;
* ``range_majority(l, r)`` -- the majority element of a range, if any;
* ``frequent_in_range(l, r, threshold)`` -- the heuristic enumeration of all
  values occurring at least ``threshold`` times in the range;
* ``top_k_in_range(l, r, k)`` -- best-first enumeration of the ``k`` most
  frequent values of the range;
* ``range_count(value, l, r)`` / ``range_count_prefix(prefix, l, r)`` --
  counting within a range via two ranks.

Every method takes and returns application-level values (decoded through the
codec), so the analytics read naturally in the database-style examples.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator, List, Optional, Tuple

from repro.bits.bitstring import Bits
from repro.exceptions import OutOfBoundsError

__all__ = ["RangeQueryMixin"]


class RangeQueryMixin:
    """Section 5 algorithms; mixed into the Wavelet Trie base class."""

    # The host class provides these attributes / methods.
    _root = None
    _size = 0
    _codec = None

    # ------------------------------------------------------------------
    # Sequential access (paper Section 5, "Sequential access")
    # ------------------------------------------------------------------
    def iter_range(self, start: int, stop: int) -> Iterator[Any]:
        """Yield the elements at positions ``[start, stop)`` in order.

        Uses one iterator per traversed node, so extracting ``r - l`` strings
        costs one rank per traversed node plus O(1) amortised work per output
        bit, as in the paper's analysis.
        """
        self._check_range(start, stop)
        if start >= stop or self._root is None:
            return
        for bits in self._iter_range_bits(self._root, start, stop, Bits.empty()):
            yield self._codec.from_bits(bits)

    def _iter_range_bits(
        self, node, start: int, stop: int, prefix: Bits
    ) -> Iterator[Bits]:
        current = prefix + node.label
        if node.is_leaf:
            for _ in range(stop - start):
                yield current
            return
        vector = node.bitvector
        left_lo, left_hi = vector.rank_many(0, (start, stop))
        right_lo = start - left_lo
        right_hi = stop - left_hi
        left_iter: Optional[Iterator[Bits]] = None
        right_iter: Optional[Iterator[Bits]] = None
        for bit in vector.iter_range(start, stop):
            if bit == 0:
                if left_iter is None:
                    left_iter = self._iter_range_bits(
                        node.children[0], left_lo, left_hi, current.appended(0)
                    )
                yield next(left_iter)
            else:
                if right_iter is None:
                    right_iter = self._iter_range_bits(
                        node.children[1], right_lo, right_hi, current.appended(1)
                    )
                yield next(right_iter)

    # ------------------------------------------------------------------
    # Distinct values in range
    # ------------------------------------------------------------------
    def distinct_in_range(
        self, start: int, stop: int, prefix: Any = None
    ) -> List[Tuple[Any, int]]:
        """Distinct values occurring in ``[start, stop)`` with their counts.

        If ``prefix`` is given, only values starting with it are reported
        (the traversal starts at the prefix node, e.g. "distinct hostnames in
        a time range" from the paper).  Values are returned in lexicographic
        (trie DFS) order of their binarised form.
        """
        self._check_range(start, stop)
        if start >= stop or self._root is None:
            return []
        node, lo, hi, accumulated = self._range_at_prefix(start, stop, prefix)
        if node is None or lo >= hi:
            return []
        results: List[Tuple[Any, int]] = []
        self._collect_distinct(node, lo, hi, accumulated, results)
        return results

    def _range_at_prefix(self, start: int, stop: int, prefix: Any):
        """Map a position range at the root to the node of ``prefix``.

        Returns ``(node, lo, hi, accumulated_bits)``; ``node`` is None when no
        element of the sequence has the prefix.
        """
        if prefix is None:
            return self._root, start, stop, Bits.empty()
        prefix_bits = self._codec.prefix_to_bits(prefix)
        node = self._root
        lo, hi = start, stop
        accumulated = Bits.empty()
        remaining = prefix_bits
        while True:
            label = node.label
            lcp = remaining.lcp_length(label)
            if lcp == len(remaining):
                return node, lo, hi, accumulated
            if lcp < len(label) or node.is_leaf:
                return None, 0, 0, accumulated
            bit = remaining[len(label)]
            vector = node.bitvector
            lo, hi = vector.rank(bit, lo), vector.rank(bit, hi)
            accumulated = (accumulated + label).appended(bit)
            remaining = remaining.suffix_from(len(label) + 1)
            node = node.children[bit]

    def _collect_distinct(
        self, node, lo: int, hi: int, prefix: Bits, out: List[Tuple[Any, int]]
    ) -> None:
        current = prefix + node.label
        if node.is_leaf:
            out.append((self._codec.from_bits(current), hi - lo))
            return
        vector = node.bitvector
        left_lo, left_hi = vector.rank_many(0, (lo, hi))
        right_lo, right_hi = lo - left_lo, hi - left_hi
        if left_hi > left_lo:
            self._collect_distinct(
                node.children[0], left_lo, left_hi, current.appended(0), out
            )
        if right_hi > right_lo:
            self._collect_distinct(
                node.children[1], right_lo, right_hi, current.appended(1), out
            )

    def count_distinct_in_range(self, start: int, stop: int, prefix: Any = None) -> int:
        """Number of distinct values in ``[start, stop)`` (optionally under a prefix)."""
        return len(self.distinct_in_range(start, stop, prefix))

    # ------------------------------------------------------------------
    # Range majority
    # ------------------------------------------------------------------
    def range_majority(
        self, start: int, stop: int, prefix: Any = None
    ) -> Optional[Tuple[Any, int]]:
        """The value occurring more than ``(stop - start) / 2`` times, if any.

        Returns ``(value, count)`` or None.  With ``prefix`` the search is
        restricted to (and the threshold computed over) the elements carrying
        the prefix.
        """
        self._check_range(start, stop)
        if start >= stop or self._root is None:
            return None
        node, lo, hi, accumulated = self._range_at_prefix(start, stop, prefix)
        if node is None or lo >= hi:
            return None
        threshold = (hi - lo) / 2
        current = accumulated
        while True:
            current = current + node.label
            if node.is_leaf:
                count = hi - lo
                if count > threshold:
                    return self._codec.from_bits(current), count
                return None
            vector = node.bitvector
            left_lo, left_hi = vector.rank_many(0, (lo, hi))
            zeros = left_hi - left_lo
            ones = (hi - lo) - zeros
            if zeros > threshold:
                node, lo, hi = node.children[0], left_lo, left_hi
                current = current.appended(0)
            elif ones > threshold:
                node, lo, hi = node.children[1], lo - left_lo, hi - left_hi
                current = current.appended(1)
            else:
                return None

    # ------------------------------------------------------------------
    # Frequent elements (threshold heuristic) and top-k
    # ------------------------------------------------------------------
    def frequent_in_range(
        self, start: int, stop: int, threshold: int, prefix: Any = None
    ) -> List[Tuple[Any, int]]:
        """Values occurring at least ``threshold`` times in ``[start, stop)``.

        Implements the paper's branch-pruning heuristic: a subtree is explored
        only while its range still holds at least ``threshold`` elements.
        """
        self._check_range(start, stop)
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if start >= stop or self._root is None:
            return []
        node, lo, hi, accumulated = self._range_at_prefix(start, stop, prefix)
        if node is None or hi - lo < threshold:
            return []
        results: List[Tuple[Any, int]] = []
        self._collect_frequent(node, lo, hi, accumulated, threshold, results)
        return results

    def _collect_frequent(
        self, node, lo: int, hi: int, prefix: Bits, threshold: int,
        out: List[Tuple[Any, int]],
    ) -> None:
        current = prefix + node.label
        if node.is_leaf:
            if hi - lo >= threshold:
                out.append((self._codec.from_bits(current), hi - lo))
            return
        vector = node.bitvector
        left_lo, left_hi = vector.rank_many(0, (lo, hi))
        right_lo, right_hi = lo - left_lo, hi - left_hi
        if left_hi - left_lo >= threshold:
            self._collect_frequent(
                node.children[0], left_lo, left_hi, current.appended(0), threshold, out
            )
        if right_hi - right_lo >= threshold:
            self._collect_frequent(
                node.children[1], right_lo, right_hi, current.appended(1), threshold, out
            )

    def top_k_in_range(
        self, start: int, stop: int, k: int, prefix: Any = None
    ) -> List[Tuple[Any, int]]:
        """The ``k`` most frequent values in ``[start, stop)``, most frequent first.

        Best-first traversal: subtrees are expanded in decreasing order of
        their element count, so only the branches needed to certify the top-k
        are visited.  Ties are broken by trie (lexicographic) order.
        """
        self._check_range(start, stop)
        if k <= 0:
            return []
        if start >= stop or self._root is None:
            return []
        node, lo, hi, accumulated = self._range_at_prefix(start, stop, prefix)
        if node is None or lo >= hi:
            return []
        counter = 0
        heap: List[Tuple[int, int, Any, int, int, Bits]] = []
        heapq.heappush(heap, (-(hi - lo), counter, node, lo, hi, accumulated))
        results: List[Tuple[Any, int]] = []
        while heap and len(results) < k:
            negative_count, _, node, lo, hi, prefix_bits = heapq.heappop(heap)
            current = prefix_bits + node.label
            if node.is_leaf:
                results.append((self._codec.from_bits(current), -negative_count))
                continue
            vector = node.bitvector
            left_lo, left_hi = vector.rank_many(0, (lo, hi))
            right_lo, right_hi = lo - left_lo, hi - left_hi
            if left_hi > left_lo:
                counter += 1
                heapq.heappush(
                    heap,
                    (-(left_hi - left_lo), counter, node.children[0],
                     left_lo, left_hi, current.appended(0)),
                )
            if right_hi > right_lo:
                counter += 1
                heapq.heappush(
                    heap,
                    (-(right_hi - right_lo), counter, node.children[1],
                     right_lo, right_hi, current.appended(1)),
                )
        return results

    # ------------------------------------------------------------------
    # Range counting
    # ------------------------------------------------------------------
    def range_count(self, value: Any, start: int, stop: int) -> int:
        """Occurrences of ``value`` within positions ``[start, stop)``."""
        self._check_range(start, stop)
        return self.rank(value, stop) - self.rank(value, start)

    def range_count_prefix(self, prefix: Any, start: int, stop: int) -> int:
        """Elements with ``prefix`` within positions ``[start, stop)``."""
        self._check_range(start, stop)
        return self.rank_prefix(prefix, stop) - self.rank_prefix(prefix, start)

    # ------------------------------------------------------------------
    def _check_range(self, start: int, stop: int) -> None:
        if not (0 <= start <= stop <= self._size):
            raise OutOfBoundsError(
                f"range [{start}, {stop}) invalid for sequence of length {self._size}"
            )
