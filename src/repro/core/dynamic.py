"""The fully dynamic Wavelet Trie (paper Section 4, Theorem 4.4).

Supports ``insert`` and ``delete`` at arbitrary positions, of arbitrary --
possibly previously unseen -- strings, with a dynamic alphabet: the shape of
the underlying Patricia trie changes as the distinct-string set grows and
shrinks.  Internal nodes store the fully dynamic RLE+gamma bitvectors of
Section 4.2, so every operation costs ``O(|s| + h_s log n)``; deleting the
last occurrence of a string additionally pays the Patricia-trie merge
(``O(l̂ + h_s log n)``), exactly the dagger case of Table 1.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Tuple

from repro.bits.bitstring import Bits
from repro.bitvector.base import validate_delete_positions
from repro.bitvector.dynamic import DynamicBitVector
from repro.core.base import WaveletTrieBase
from repro.core.growable import GrowableTopologyMixin
from repro.core.node import WaveletTrieNode
from repro.exceptions import OutOfBoundsError
from repro.tries.binarize import StringCodec

__all__ = ["DynamicWaveletTrie"]


class DynamicWaveletTrie(GrowableTopologyMixin, WaveletTrieBase):
    """Compressed indexed sequence with insertions and deletions anywhere.

    Examples
    --------
    >>> seq = DynamicWaveletTrie(["/a", "/b", "/a"])
    >>> seq.insert("/c", 1)
    >>> seq.to_list()
    ['/a', '/c', '/b', '/a']
    >>> seq.delete(2)
    '/b'
    >>> seq.to_list()
    ['/a', '/c', '/a']
    """

    def __init__(
        self,
        values: Iterable[Any] = (),
        codec: Optional[StringCodec] = None,
        seed: int = 0x5EED,
    ) -> None:
        super().__init__(codec)
        self._seed = seed
        self._next_seed = seed
        for value in values:
            self.append(value)

    # ------------------------------------------------------------------
    def _new_constant_bitvector(self, bit: int, length: int) -> DynamicBitVector:
        self._next_seed = (self._next_seed * 6364136223846793005 + 1) % (1 << 63)
        return DynamicBitVector.init_run(bit, length, seed=self._next_seed)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def append(self, value: Any) -> None:
        """Append ``value`` at the end (``Insert`` at position ``n``)."""
        key = self._codec.to_bits(value)
        self._ensure_key(key)
        for node, bit in self._walk_for_update(key):
            node.bitvector.append(bit)
        self._size += 1

    def extend(self, values: Iterable[Any]) -> None:
        """Append every element of ``values`` in order (bulk paper Append).

        Batch-amortised like the append-only variant: per-node bits are
        buffered between topology changes and flushed through the RLE
        bitvectors' bulk ``extend`` (kernel run extraction + O(r) treap
        build), so bulk construction never walks the treap once per bit.
        """
        self._extend_batched(values)

    def insert(self, value: Any, pos: int) -> None:
        """Insert ``value`` immediately before position ``pos`` (paper Insert).

        Cost ``O(|s| + h_s log n)``: a trie descent, then one bitvector
        ``Insert`` + ``Rank`` per internal node on the path; a previously
        unseen value first splits one trie node using ``Init``.
        """
        if not 0 <= pos <= self._size:
            raise OutOfBoundsError(
                f"insert position {pos} out of range for length {self._size}"
            )
        key = self._codec.to_bits(value)
        self._ensure_key(key)
        position = pos
        for node, bit in self._walk_for_update(key):
            node.bitvector.insert(position, bit)
            position = node.bitvector.rank(bit, position)
        self._size += 1

    def insert_many(self, values: Iterable[Any], pos: int) -> None:
        """Insert every element of ``values``, the first landing at ``pos``.

        Bulk paper ``Insert``: all topology changes (splits via ``Init`` for
        previously unseen strings) are applied first, while the bitvectors
        still hold the pre-insert counts Figure 3 requires; the inserted
        block then stays contiguous at every trie level, so each touched node
        pays one :meth:`DynamicBitVector.insert_many` (treap split + O(r_new)
        bulk build + merge) and one ``rank`` -- amortised
        O(d |s| + nodes_touched (log r + k_node)) for k elements over d
        distinct strings, instead of k per-element root-to-leaf walks.
        """
        if not 0 <= pos <= self._size:
            raise OutOfBoundsError(
                f"insert position {pos} out of range for length {self._size}"
            )
        keys = [self._codec.to_bits(value) for value in values]
        if not keys:
            return
        ensured = set()
        for key in keys:
            if key not in ensured:
                ensured.add(key)
                self._ensure_key(key)
        stack: List[Tuple[WaveletTrieNode, int, List[Bits], int]] = [
            (self._root, 0, keys, pos)
        ]
        while stack:
            node, depth, group, position = stack.pop()
            if node.is_leaf:
                continue
            branch_at = depth + len(node.label)
            bits = [key[branch_at] for key in group]
            left_position = node.bitvector.rank(0, position)
            right_position = position - left_position
            node.bitvector.insert_many(position, bits)
            left_group = [key for key, bit in zip(group, bits) if bit == 0]
            right_group = [key for key, bit in zip(group, bits) if bit == 1]
            child_depth = branch_at + 1
            if left_group:
                stack.append(
                    (node.children[0], child_depth, left_group, left_position)
                )
            if right_group:
                stack.append(
                    (node.children[1], child_depth, right_group, right_position)
                )
        self._size += len(keys)

    def delete(self, pos: int) -> Any:
        """Delete the element at position ``pos`` and return it (paper Delete).

        Deleting the last occurrence of a value also removes its leaf from the
        Patricia trie and merges its parent with the sibling (the dagger case
        of Table 1).
        """
        if not 0 <= pos < self._size:
            raise OutOfBoundsError(
                f"delete position {pos} out of range for length {self._size}"
            )
        # Walk down recording the path and per-node positions.
        node = self._root
        position = pos
        path: List[Tuple[WaveletTrieNode, int, int]] = []
        out = node.label
        while not node.is_leaf:
            bit = node.bitvector.access(position)
            path.append((node, bit, position))
            position = node.bitvector.rank(bit, position)
            node = node.children[bit]
            out = out.appended(bit) + node.label
        value = self._codec.from_bits(out)
        # Remove the recorded bit from every bitvector on the path.  The
        # positions were computed before any modification and refer to
        # distinct bitvectors, so the order of deletion does not matter.
        for internal, _, node_position in path:
            internal.bitvector.delete(node_position)
        self._size -= 1
        if self._size == 0:
            self._root = None
            return value
        if path:
            parent, leaf_bit, _ = path[-1]
            self._remove_leaf_if_last(parent, leaf_bit)
        return value

    def delete_many(self, positions) -> List[Any]:
        """Delete the elements at ``positions``; values come back in input order.

        Bulk paper ``Delete``: the (pre-delete, distinct) positions are
        partitioned down the trie exactly once -- at every touched node one
        :meth:`DynamicBitVector.rank_many` maps the group to child positions
        and one :meth:`DynamicBitVector.delete_many` (treap split + O(r_span)
        run surgery + coalescing merge) removes the group's bits and reports
        which child each position routed to -- amortised
        O(nodes_touched (log r + r_span + k_node log k_node)) for k
        deletions over the touched paths, instead of k root-to-leaf walks.
        Subtrees whose subsequence empties are pruned afterwards (the bulk
        form of the Table 1 dagger merge), and deleting everything resets the
        trie to the empty state, from which it regrows normally.
        """
        positions = validate_delete_positions(positions, self._size)
        if not positions:
            return []
        order = sorted(range(len(positions)), key=positions.__getitem__)
        results: List[Any] = [None] * len(positions)
        prune: List[Tuple[WaveletTrieNode, int]] = []
        # Stack items: (node, accumulated label bits, [(result slot, local pos)]).
        stack: List[Tuple[WaveletTrieNode, Bits, List[Tuple[int, int]]]] = [
            (
                self._root,
                Bits.empty(),
                [(index, positions[index]) for index in order],
            )
        ]
        while stack:
            node, prefix, items = stack.pop()
            current = prefix + node.label
            if node.is_leaf:
                value = self._codec.from_bits(current)
                for slot, _ in items:
                    results[slot] = value
                continue
            vector = node.bitvector
            group_positions = [pos for _, pos in items]
            zero_ranks = vector.rank_many(0, group_positions)
            bits = vector.delete_many(group_positions)
            groups: List[List[Tuple[int, int]]] = [[], []]
            for (slot, pos), zero_rank, bit in zip(items, zero_ranks, bits):
                groups[bit].append((slot, pos - zero_rank if bit else zero_rank))
            for bit in (0, 1):
                if vector.count(bit) == 0:
                    prune.append((node, bit))
                if groups[bit]:
                    stack.append(
                        (node.children[bit], current.appended(bit), groups[bit])
                    )
        self._size -= len(positions)
        if self._size == 0:
            self._root = None
            return results
        for node, bit in prune:
            self._prune_empty_child(node, bit)
        return results
