"""Bulk construction of a Wavelet Trie from a sequence (Definition 3.1).

The builder follows the recursive definition: the root label is the longest
common prefix of the sequence, the root bitvector records the bit following
the prefix in each element, and the two children are built on the projected
subsequences.  The implementation is iterative (explicit work stack), so deep
tries -- long URLs produce paths hundreds of bits deep -- never hit Python's
recursion limit.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.bits.bitstring import Bits
from repro.core.node import WaveletTrieNode
from repro.exceptions import BinarizationError

__all__ = ["build_wavelet_trie_nodes"]

BitvectorFactory = Callable[[Sequence[int]], object]


def _longest_common_prefix(sequence: Sequence[Bits]) -> int:
    """Length of the longest common prefix of all elements."""
    first = sequence[0]
    lcp = len(first)
    for item in sequence[1:]:
        lcp = min(lcp, first.lcp_length(item))
        if lcp == 0:
            break
    return lcp


def build_wavelet_trie_nodes(
    encoded: Sequence[Bits],
    bitvector_factory: BitvectorFactory,
) -> Optional[WaveletTrieNode]:
    """Build the node tree of ``WT(S)`` for the binarised sequence ``encoded``.

    ``bitvector_factory`` receives the list of branching bits of one node and
    returns the bitvector object stored there (RRR for the static trie, a
    dynamic bitvector for bulk-loading the dynamic variants).

    Raises :class:`BinarizationError` if the underlying string set is not
    prefix-free (which the codecs guarantee by construction).
    """
    if not encoded:
        return None

    root_holder: List[Optional[WaveletTrieNode]] = [None]
    # Work items: (subsequence, parent node, branching bit under the parent).
    stack: List[tuple] = [(list(encoded), None, 0)]
    while stack:
        sequence, parent, parent_bit = stack.pop()
        first = sequence[0]
        lcp = _longest_common_prefix(sequence)
        if lcp == len(first):
            # `first` is a prefix of every element; with a prefix-free set
            # this means the subsequence is constant -> leaf node.
            for item in sequence:
                if len(item) != len(first):
                    raise BinarizationError(
                        "the binarised string set is not prefix-free"
                    )
            node = WaveletTrieNode(label=first)
        else:
            alpha = first.prefix(lcp)
            branch_bits = [item[lcp] for item in sequence]
            node = WaveletTrieNode(
                label=alpha, bitvector=bitvector_factory(branch_bits)
            )
            left: List[Bits] = []
            right: List[Bits] = []
            for item, bit in zip(sequence, branch_bits):
                suffix = item.suffix_from(lcp + 1)
                if bit:
                    right.append(suffix)
                else:
                    left.append(suffix)
            if not left or not right:  # pragma: no cover - lcp is maximal
                raise AssertionError("both children of a split must be non-empty")
            stack.append((right, node, 1))
            stack.append((left, node, 0))
        if parent is None:
            root_holder[0] = node
        else:
            parent.attach(parent_bit, node)
    return root_holder[0]
