"""The Wavelet Trie: compressed indexed sequences of strings.

Three variants, matching the paper's Table 1:

* :class:`~repro.core.static.WaveletTrie` -- static (Theorem 3.7);
* :class:`~repro.core.append_only.AppendOnlyWaveletTrie` -- supports
  ``append`` (Theorem 4.3);
* :class:`~repro.core.dynamic.DynamicWaveletTrie` -- fully dynamic
  ``insert``/``append``/``delete`` with a dynamic alphabet (Theorem 4.4).

All variants share the query interface of
:class:`~repro.core.interface.IndexedStringSequence` (``access``, ``rank``,
``select``, ``rank_prefix``, ``select_prefix``) and the Section 5 range
analytics implemented in :mod:`repro.core.range_queries`.

Every variant is also a :class:`~repro.core.tiers.Tier` -- a stage in the
explicit freeze lifecycle (mutable -> frozen -> succinct -> image) hosted in
:mod:`repro.core.tiers`, which composes them into the LSM-style
:class:`~repro.core.tiers.TieredWaveletTrie` (one mutable tail tier plus
frozen RRR tiers with budgeted background compaction).
"""

from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.dynamic import DynamicWaveletTrie
from repro.core.interface import IndexedStringSequence
from repro.core.node import WaveletTrieNode
from repro.core.static import WaveletTrie
from repro.core.succinct_static import SuccinctWaveletTrie
from repro.core.tiers import Tier, TieredWaveletTrie, TrieFreezer, freeze_trie

__all__ = [
    "AppendOnlyWaveletTrie",
    "SuccinctWaveletTrie",
    "DynamicWaveletTrie",
    "IndexedStringSequence",
    "Tier",
    "TieredWaveletTrie",
    "TrieFreezer",
    "WaveletTrie",
    "WaveletTrieNode",
    "freeze_trie",
]
