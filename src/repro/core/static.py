"""The static Wavelet Trie (paper Section 3, Theorem 3.7).

Built once from a sequence of values; supports ``Access``, ``Rank``,
``Select``, ``RankPrefix``, ``SelectPrefix`` and the Section 5 range
analytics in ``O(|s| + h_s)`` time, with node bitvectors stored in RRR
compressed form so the total space is ``LT(Sset) + n H0(S)`` plus lower-order
terms.

The default in-memory layout is pointer-based (one Python object per trie
node); :meth:`WaveletTrie.succinct_space_breakdown` additionally *measures*
the Theorem 3.7 succinct layout -- DFUDS topology, concatenated labels with
Elias-Fano delimiters, concatenated RRR encodings with their delimiters -- so
the space experiments can report both the engineered and the succinct
accounting.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence

from repro.bits.bitstring import Bits
from repro.bitvector.plain import PlainBitVector
from repro.bitvector.rle import RLEBitVector
from repro.bitvector.rrr import RRRBitVector
from repro.core.base import WaveletTrieBase
from repro.core.builder import build_wavelet_trie_nodes
from repro.exceptions import ImmutableStructureError
from repro.succinct.dfuds import DFUDSTree
from repro.succinct.partial_sums import StaticPartialSums
from repro.tries.binarize import StringCodec

__all__ = ["WaveletTrie"]

_BITVECTOR_FACTORIES = {
    "rrr": RRRBitVector,
    "plain": PlainBitVector,
    "rle": RLEBitVector,
}


class WaveletTrie(WaveletTrieBase):
    """Static compressed indexed sequence of strings.

    Parameters
    ----------
    values:
        The sequence to index.  Strings by default; other types need a
        matching ``codec``.
    codec:
        Binarisation codec (defaults to UTF-8 + NUL terminator).
    bitvector:
        Which static bitvector to store in the internal nodes: ``"rrr"``
        (default, the paper's choice), ``"plain"`` or ``"rle"`` -- the knob
        used by the ablation benchmark.

    Examples
    --------
    >>> wt = WaveletTrie(["/a/x", "/a/y", "/b", "/a/x"])
    >>> wt.access(0)
    '/a/x'
    >>> wt.rank("/a/x", 4)
    2
    >>> wt.select_prefix("/a", 2)
    3
    """

    def __init__(
        self,
        values: Iterable[Any] = (),
        codec: Optional[StringCodec] = None,
        bitvector: str = "rrr",
    ) -> None:
        super().__init__(codec)
        if bitvector not in _BITVECTOR_FACTORIES:
            raise ValueError(
                f"unknown bitvector kind {bitvector!r}; "
                f"expected one of {sorted(_BITVECTOR_FACTORIES)}"
            )
        self._bitvector_kind = bitvector
        factory = _BITVECTOR_FACTORIES[bitvector]
        values = list(values)
        encoded = [self._codec.to_bits(value) for value in values]
        self._root = build_wavelet_trie_nodes(encoded, factory)
        self._size = len(encoded)

    # ------------------------------------------------------------------
    @classmethod
    def from_bits_sequence(
        cls,
        encoded: Sequence[Bits],
        codec: Optional[StringCodec] = None,
        bitvector: str = "rrr",
    ) -> "WaveletTrie":
        """Build directly from already-binarised values (testing/benchmarks)."""
        trie = cls([], codec=codec, bitvector=bitvector)
        trie._root = build_wavelet_trie_nodes(
            list(encoded), _BITVECTOR_FACTORIES[bitvector]
        )
        trie._size = len(encoded)
        return trie

    @property
    def bitvector_kind(self) -> str:
        """Which static bitvector the internal nodes use."""
        return self._bitvector_kind

    # ------------------------------------------------------------------
    # Updates are rejected: the structure is static.
    # ------------------------------------------------------------------
    def append(self, value: Any) -> None:
        raise ImmutableStructureError(
            "WaveletTrie is static; use AppendOnlyWaveletTrie or DynamicWaveletTrie"
        )

    def insert(self, value: Any, pos: int) -> None:
        raise ImmutableStructureError(
            "WaveletTrie is static; use DynamicWaveletTrie"
        )

    def delete(self, pos: int) -> Any:
        raise ImmutableStructureError(
            "WaveletTrie is static; use DynamicWaveletTrie"
        )

    # ------------------------------------------------------------------
    # Succinct space accounting (Theorem 3.7)
    # ------------------------------------------------------------------
    def succinct_topology_bits(self) -> int:
        """Measured size of a DFUDS encoding of the trie topology."""
        if self._root is None:
            return 0
        dfuds = DFUDSTree.from_tree(
            self._root,
            lambda node: [] if node.is_leaf else
            [node.children[0], node.children[1]],
        )
        return dfuds.size_in_bits()

    def succinct_space_breakdown(self) -> Dict[str, float]:
        """The Theorem 3.7 decomposition, measured on this instance.

        Components: DFUDS topology, concatenated labels ``L``, label
        delimiters, concatenated node-bitvector encodings, encoding
        delimiters.  All in bits.
        """
        if self._root is None:
            return {
                "topology": 0, "labels": 0, "label_delimiters": 0,
                "bitvectors": 0, "bitvector_delimiters": 0, "total": 0,
            }
        label_lengths = []
        bitvector_sizes = []
        for node in self.nodes():
            label_lengths.append(len(node.label))
            if node.bitvector is not None:
                bitvector_sizes.append(node.bitvector.size_in_bits())
        topology = self.succinct_topology_bits()
        labels = sum(label_lengths)
        label_delimiters = StaticPartialSums(label_lengths).size_in_bits()
        bitvectors = sum(bitvector_sizes)
        bitvector_delimiters = (
            StaticPartialSums(bitvector_sizes).size_in_bits()
            if bitvector_sizes else 0
        )
        total = topology + labels + label_delimiters + bitvectors + bitvector_delimiters
        return {
            "topology": topology,
            "labels": labels,
            "label_delimiters": label_delimiters,
            "bitvectors": bitvectors,
            "bitvector_delimiters": bitvector_delimiters,
            "total": total,
        }
