"""The static Wavelet Trie (paper Section 3, Theorem 3.7).

Built once from a sequence of values; supports ``Access``, ``Rank``,
``Select``, ``RankPrefix``, ``SelectPrefix`` and the Section 5 range
analytics in ``O(|s| + h_s)`` time, with node bitvectors stored in RRR
compressed form so the total space is ``LT(Sset) + n H0(S)`` plus lower-order
terms.

The default in-memory layout is pointer-based (one Python object per trie
node); :meth:`WaveletTrie.succinct_space_breakdown` additionally *measures*
the Theorem 3.7 succinct layout -- DFUDS topology, concatenated labels with
Elias-Fano delimiters, concatenated RRR encodings with their delimiters -- so
the space experiments can report both the engineered and the succinct
accounting.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence

from repro.bits.bitstring import Bits
from repro.bitvector.plain import PlainBitVector
from repro.bitvector.rle import RLEBitVector
from repro.bitvector.rrr import RRRBitVector
from repro.core.base import WaveletTrieBase
from repro.core.builder import build_wavelet_trie_nodes
from repro.core.node import WaveletTrieNode
from repro.exceptions import ImmutableStructureError, SerializationError
from repro.succinct.dfuds import DFUDSTree
from repro.succinct.partial_sums import StaticPartialSums
from repro.tries.binarize import StringCodec

__all__ = ["WaveletTrie"]

_BITVECTOR_FACTORIES = {
    "rrr": RRRBitVector,
    "plain": PlainBitVector,
    "rle": RLEBitVector,
}


class WaveletTrie(WaveletTrieBase):
    """Static compressed indexed sequence of strings.

    Parameters
    ----------
    values:
        The sequence to index.  Strings by default; other types need a
        matching ``codec``.
    codec:
        Binarisation codec (defaults to UTF-8 + NUL terminator).
    bitvector:
        Which static bitvector to store in the internal nodes: ``"rrr"``
        (default, the paper's choice), ``"plain"`` or ``"rle"`` -- the knob
        used by the ablation benchmark.

    Examples
    --------
    >>> wt = WaveletTrie(["/a/x", "/a/y", "/b", "/a/x"])
    >>> wt.access(0)
    '/a/x'
    >>> wt.rank("/a/x", 4)
    2
    >>> wt.select_prefix("/a", 2)
    3
    """

    def __init__(
        self,
        values: Iterable[Any] = (),
        codec: Optional[StringCodec] = None,
        bitvector: str = "rrr",
    ) -> None:
        super().__init__(codec)
        if bitvector not in _BITVECTOR_FACTORIES:
            raise ValueError(
                f"unknown bitvector kind {bitvector!r}; "
                f"expected one of {sorted(_BITVECTOR_FACTORIES)}"
            )
        self._bitvector_kind = bitvector
        factory = _BITVECTOR_FACTORIES[bitvector]
        values = list(values)
        encoded = [self._codec.to_bits(value) for value in values]
        self._root = build_wavelet_trie_nodes(encoded, factory)
        self._size = len(encoded)

    # ------------------------------------------------------------------
    @classmethod
    def from_bits_sequence(
        cls,
        encoded: Sequence[Bits],
        codec: Optional[StringCodec] = None,
        bitvector: str = "rrr",
    ) -> "WaveletTrie":
        """Build directly from already-binarised values (testing/benchmarks)."""
        trie = cls([], codec=codec, bitvector=bitvector)
        trie._root = build_wavelet_trie_nodes(
            list(encoded), _BITVECTOR_FACTORIES[bitvector]
        )
        trie._size = len(encoded)
        return trie

    @property
    def bitvector_kind(self) -> str:
        """Which static bitvector the internal nodes use."""
        return self._bitvector_kind

    # ------------------------------------------------------------------
    # Frozen-image (RWT2) exchange -- see docs/ARCHITECTURE.md, "Storage"
    # ------------------------------------------------------------------
    _IMAGE_BITVECTOR_LOADERS = {
        "rrr": RRRBitVector.from_words_image,
        "plain": PlainBitVector.from_words_image,
    }

    def to_words_image(self, sink, prefix: str = "") -> dict:
        """Write the trie into a frozen-image sink (word-array kinds only).

        The topology and labels go into the meta as one *flat preorder*
        node list ``[is_internal, label_value, label_length]`` (iterative,
        so deep Patricia chains cannot hit recursion or JSON nesting
        limits); internal node ``r`` (by preorder internal rank) writes its
        bitvector's sections under ``prefix + "n{r}."``.  Only ``"rrr"``
        and ``"plain"`` node bitvectors have a word-array image layout;
        ``"rle"`` tries must use the RWT1 logical container instead.
        """
        if self._bitvector_kind not in self._IMAGE_BITVECTOR_LOADERS:
            raise SerializationError(
                f"WaveletTrie with {self._bitvector_kind!r} node bitvectors "
                "has no frozen-image layout; save it with the RWT1 logical "
                "container instead"
            )
        nodes: list = []
        bv_metas: list = []
        if self._root is not None:
            stack = [self._root]
            while stack:
                node = stack.pop()
                if node.is_leaf:
                    nodes.append([0, node.label.value, len(node.label)])
                else:
                    nodes.append([1, node.label.value, len(node.label)])
                    bv_metas.append(
                        node.bitvector.to_words_image(
                            sink, f"{prefix}n{len(bv_metas)}."
                        )
                    )
                    stack.append(node.children[1])
                    stack.append(node.children[0])
        return {
            "size": self._size,
            "kind": self._bitvector_kind,
            "nodes": nodes,
            "bitvectors": bv_metas,
        }

    @classmethod
    def from_words_image(
        cls, image, prefix: str, meta: dict, codec: Optional[StringCodec] = None
    ) -> "WaveletTrie":
        """Open from a frozen image; node bitvectors alias the buffer.

        Rebuilds only the lightweight node shell objects (one per trie
        node); no bitvector is decoded or re-encoded.  The preorder node
        list is replayed iteratively: after an internal node, the next
        subtree in the list is its 0-child, then its 1-child.
        """
        kind = meta["kind"]
        loader = cls._IMAGE_BITVECTOR_LOADERS.get(kind)
        if loader is None:
            raise SerializationError(
                f"unknown node-bitvector kind {kind!r} in frozen image"
            )
        self = cls([], codec=codec, bitvector=kind)
        self._size = int(meta["size"])
        nodes_meta = meta["nodes"]
        if not nodes_meta:
            self._root = None
            return self
        bv_metas = meta["bitvectors"]
        internal_rank = 0
        root = None
        pending: list = []  # (parent, bit) slots awaiting the next subtree
        for is_internal, value, length in nodes_meta:
            label = Bits(int(value), int(length))
            if is_internal:
                vector = loader(
                    image, f"{prefix}n{internal_rank}.", bv_metas[internal_rank]
                )
                internal_rank += 1
                node = WaveletTrieNode(label, vector)
            else:
                node = WaveletTrieNode(label)
            if root is None:
                root = node
            else:
                parent, bit = pending.pop()
                parent.attach(bit, node)
            if is_internal:
                pending.append((node, 1))
                pending.append((node, 0))
        if pending:
            raise SerializationError(
                "frozen image node list is truncated (dangling child slots)"
            )
        self._root = root
        return self

    # ------------------------------------------------------------------
    # Tier protocol (see repro.core.tiers)
    # ------------------------------------------------------------------
    @property
    def tier_state(self) -> str:
        """Always ``"frozen"``: the static trie is immutable."""
        return "frozen"

    def freeze_step(self, budget: int = 64) -> bool:
        """No freeze work on an already-frozen tier; returns True."""
        return True

    def to_succinct(self):
        """Flatten into the pointerless Theorem 3.7 succinct layout."""
        from repro.core.succinct_static import SuccinctWaveletTrie

        return SuccinctWaveletTrie.from_pointer_trie(self)

    # ------------------------------------------------------------------
    # Updates are rejected: the structure is static.
    # ------------------------------------------------------------------
    def append(self, value: Any) -> None:
        raise ImmutableStructureError(
            "WaveletTrie is static; use AppendOnlyWaveletTrie or DynamicWaveletTrie"
        )

    def insert(self, value: Any, pos: int) -> None:
        raise ImmutableStructureError(
            "WaveletTrie is static; use DynamicWaveletTrie"
        )

    def delete(self, pos: int) -> Any:
        raise ImmutableStructureError(
            "WaveletTrie is static; use DynamicWaveletTrie"
        )

    # ------------------------------------------------------------------
    # Succinct space accounting (Theorem 3.7)
    # ------------------------------------------------------------------
    def succinct_topology_bits(self) -> int:
        """Measured size of a DFUDS encoding of the trie topology."""
        if self._root is None:
            return 0
        dfuds = DFUDSTree.from_tree(
            self._root,
            lambda node: [] if node.is_leaf else
            [node.children[0], node.children[1]],
        )
        return dfuds.size_in_bits()

    def succinct_space_breakdown(self) -> Dict[str, float]:
        """The Theorem 3.7 decomposition, measured on this instance.

        Components: DFUDS topology, concatenated labels ``L``, label
        delimiters, concatenated node-bitvector encodings, encoding
        delimiters.  All in bits.
        """
        if self._root is None:
            return {
                "topology": 0, "labels": 0, "label_delimiters": 0,
                "bitvectors": 0, "bitvector_delimiters": 0, "total": 0,
            }
        label_lengths = []
        bitvector_sizes = []
        for node in self.nodes():
            label_lengths.append(len(node.label))
            if node.bitvector is not None:
                bitvector_sizes.append(node.bitvector.size_in_bits())
        topology = self.succinct_topology_bits()
        labels = sum(label_lengths)
        label_delimiters = StaticPartialSums(label_lengths).size_in_bits()
        bitvectors = sum(bitvector_sizes)
        bitvector_delimiters = (
            StaticPartialSums(bitvector_sizes).size_in_bits()
            if bitvector_sizes else 0
        )
        total = topology + labels + label_delimiters + bitvectors + bitvector_delimiters
        return {
            "topology": topology,
            "labels": labels,
            "label_delimiters": label_delimiters,
            "bitvectors": bitvectors,
            "bitvector_delimiters": bitvector_delimiters,
            "total": total,
        }
