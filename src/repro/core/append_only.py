"""The append-only Wavelet Trie (paper Section 4, Theorem 4.3).

Elements can only be added at the end of the sequence -- the query-log /
access-log scenario of the paper's introduction.  Internal nodes store the
append-only compressed bitvectors of Section 4.1, whose ``Init`` is a simple
left offset, so appending a string ``s`` (even a previously unseen one) costs
``O(|s| + h_s)``: one Patricia-trie descent plus one ``Append`` per node of
the path.

Queries are identical to the static variant and cost ``O(|s| + h_s)``.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.bitvector.append_only import AppendOnlyBitVector
from repro.core.base import WaveletTrieBase
from repro.core.growable import GrowableTopologyMixin
from repro.exceptions import InvalidOperationError, OutOfBoundsError
from repro.tries.binarize import StringCodec

__all__ = ["AppendOnlyWaveletTrie"]


class AppendOnlyWaveletTrie(GrowableTopologyMixin, WaveletTrieBase):
    """Compressed indexed sequence supporting ``append`` of arbitrary new strings.

    Parameters
    ----------
    values:
        Optional initial elements, appended one by one.
    codec:
        Binarisation codec (UTF-8 + NUL by default).
    block_size:
        Tail-buffer size of the node bitvectors (the paper's ``L`` parameter);
        larger blocks compress better, smaller blocks freeze more often.

    Examples
    --------
    >>> log = AppendOnlyWaveletTrie()
    >>> for url in ["/home", "/cart", "/home", "/pay"]:
    ...     log.append(url)
    >>> log.rank("/home", 4)
    2
    >>> log.rank_prefix("/", 4)
    4
    """

    def __init__(
        self,
        values: Iterable[Any] = (),
        codec: Optional[StringCodec] = None,
        block_size: int = 1024,
    ) -> None:
        super().__init__(codec)
        if block_size < 64:
            raise ValueError("block_size must be at least 64 bits")
        self._block_size = block_size
        for value in values:
            self.append(value)

    # ------------------------------------------------------------------
    def _new_constant_bitvector(self, bit: int, length: int) -> AppendOnlyBitVector:
        return AppendOnlyBitVector.init_run(bit, length, block_size=self._block_size)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def append(self, value: Any) -> None:
        """Append ``value`` at the end of the sequence (paper Append).

        Cost ``O(|s| + h_s)``: a trie descent plus one bitvector ``Append``
        per internal node of the path; a previously unseen value additionally
        splits one node using ``Init``.
        """
        key = self._codec.to_bits(value)
        self._ensure_key(key)
        for node, bit in self._walk_for_update(key):
            node.bitvector.append(bit)
        self._size += 1

    def extend(self, values: Iterable[Any]) -> None:
        """Append every element of ``values`` in order (bulk paper Append).

        Batch-amortised: one trie descent per distinct value per topology
        epoch, with per-node bits buffered and flushed through the
        append-only bitvectors' word-level ``extend`` (blocks freeze from
        packed payloads, not single-bit shifts).
        """
        self._extend_batched(values)

    def insert(self, value: Any, pos: int) -> None:
        """Only insertion at the end is supported; anywhere else raises."""
        if pos != self._size:
            raise InvalidOperationError(
                "AppendOnlyWaveletTrie only supports insertion at the end; "
                "use DynamicWaveletTrie for arbitrary positions"
            )
        self.append(value)

    def insert_many(self, values: Iterable[Any], pos: int) -> None:
        """Bulk insert, end-only: ``pos`` must equal the current length.

        Delegates to the batch-amortised :meth:`extend`; any other position
        raises, exactly like scalar :meth:`insert`.
        """
        if pos != self._size:
            raise InvalidOperationError(
                "AppendOnlyWaveletTrie only supports insertion at the end; "
                "use DynamicWaveletTrie for arbitrary positions"
            )
        self.extend(values)

    def delete(self, pos: int) -> Any:
        raise InvalidOperationError(
            "AppendOnlyWaveletTrie does not support delete; use DynamicWaveletTrie"
        )

    def delete_many(self, positions) -> Any:
        """Deletion is unsupported (batched or not); raises like :meth:`delete`.

        Overridden so the batch path rejects immediately (no amortised path
        exists) instead of validating positions first.
        """
        raise InvalidOperationError(
            "AppendOnlyWaveletTrie does not support delete; use DynamicWaveletTrie"
        )
