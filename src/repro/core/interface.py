"""The abstract interface of an indexed sequence of strings.

This is the problem statement of the paper's introduction: a sequence
``S = <s_0, ..., s_{n-1}>`` supporting random access, counting and searching,
both exact and by prefix, and optionally updates.  Every implementation in
this package -- the three Wavelet Trie variants and the related-work
baselines -- implements this interface, which is what makes the benchmark
harness able to compare them uniformly.

Positions, ranks and indices are 0-based throughout:

* ``access(pos)`` returns ``s_pos``;
* ``rank(s, pos)`` counts occurrences of ``s`` in ``s_0 .. s_{pos-1}``;
* ``select(s, idx)`` returns the position of the ``idx``-th occurrence
  (``idx = 0`` is the first one);
* ``rank_prefix`` / ``select_prefix`` are the same over all strings starting
  with the given prefix.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterator, List

from repro.bitvector.base import normalize_batch, validate_delete_positions
from repro.exceptions import InvalidOperationError, OutOfBoundsError

__all__ = [
    "IndexedStringSequence",
    "check_select_prefix_index",
    "validate_select_prefix_indexes",
]


def check_select_prefix_index(prefix: Any, idx: int, matches: int) -> None:
    """Range-check a ``select_prefix`` index against the match count.

    Raises the **canonical** out-of-range error -- one exception type
    (:class:`OutOfBoundsError`) and one message format, shared by every
    implementation (Wavelet Tries, succinct layout, baselines) so the
    differential tests can assert them byte-for-byte.
    """
    if not 0 <= idx < matches:
        raise OutOfBoundsError(
            f"select_prefix({prefix!r}, {idx}) out of range: "
            f"only {matches} matches"
        )


def validate_select_prefix_indexes(indexes, matches: int, prefix: Any) -> List[int]:
    """Normalise and range-check a ``select_prefix_many`` index batch.

    All-or-nothing: every index must be in ``[0, matches)`` before any work
    happens, and the first offender is reported with the canonical
    :func:`check_select_prefix_index` error.
    """
    out = [int(idx) for idx in normalize_batch(indexes)]
    for idx in out:
        check_select_prefix_index(prefix, idx, matches)
    return out


class IndexedStringSequence(ABC):
    """Abstract indexed sequence of strings (paper Section 1 primitives)."""

    # ------------------------------------------------------------------
    # Core queries
    # ------------------------------------------------------------------
    @abstractmethod
    def __len__(self) -> int:
        """Number of elements currently in the sequence."""

    @abstractmethod
    def access(self, pos: int) -> Any:
        """Return the element at position ``pos``."""

    @abstractmethod
    def rank(self, value: Any, pos: int) -> int:
        """Occurrences of ``value`` among the first ``pos`` elements."""

    @abstractmethod
    def select(self, value: Any, idx: int) -> int:
        """Position of the ``idx``-th (0-based) occurrence of ``value``."""

    @abstractmethod
    def rank_prefix(self, prefix: Any, pos: int) -> int:
        """Elements among the first ``pos`` whose value starts with ``prefix``."""

    @abstractmethod
    def select_prefix(self, prefix: Any, idx: int) -> int:
        """Position of the ``idx``-th element whose value starts with ``prefix``."""

    # ------------------------------------------------------------------
    # Batch queries (overridden with amortised paths where they exist)
    # ------------------------------------------------------------------
    def access_many(self, positions) -> List[Any]:
        """Elements at each of ``positions``, in input order.

        The default loops (q scalar calls, no amortisation); structures with
        a shared-descent batch path (the Wavelet Trie variants, the Wavelet
        Trees) override it with an amortised implementation.
        """
        return [self.access(pos) for pos in positions]

    def rank_many(self, value: Any, positions) -> List[int]:
        """``rank(value, pos)`` for each of ``positions``.

        Default: q scalar calls, no amortisation; overridden where a shared
        descent exists.
        """
        return [self.rank(value, pos) for pos in positions]

    def select_many(self, value: Any, indexes) -> List[int]:
        """``select(value, idx)`` for each of ``indexes``, in input order.

        Default: q scalar calls, no amortisation; overridden where a shared
        path unwind exists.
        """
        return [self.select(value, idx) for idx in indexes]

    def rank_prefix_many(self, prefix: Any, positions) -> List[int]:
        """``rank_prefix(prefix, pos)`` for each of ``positions``.

        Default: q scalar calls, no amortisation; the Wavelet Trie variants
        override it with one shared root-to-prefix-node walk.
        """
        return [self.rank_prefix(prefix, pos) for pos in positions]

    def select_prefix_many(self, prefix: Any, indexes) -> List[int]:
        """``select_prefix(prefix, idx)`` for each of ``indexes``, in input order.

        Default: q scalar calls, no amortisation; the Wavelet Trie variants
        override it with one prefix-node locate plus a batched path unwind.
        """
        return [self.select_prefix(prefix, idx) for idx in indexes]

    # ------------------------------------------------------------------
    # Updates (optional; static structures raise)
    # ------------------------------------------------------------------
    def append(self, value: Any) -> None:
        """Append ``value`` at the end of the sequence."""
        raise InvalidOperationError(
            f"{type(self).__name__} does not support append"
        )

    def insert(self, value: Any, pos: int) -> None:
        """Insert ``value`` immediately before position ``pos``."""
        raise InvalidOperationError(
            f"{type(self).__name__} does not support insert"
        )

    def delete(self, pos: int) -> Any:
        """Delete and return the element at position ``pos``."""
        raise InvalidOperationError(
            f"{type(self).__name__} does not support delete"
        )

    def delete_many(self, positions) -> List[Any]:
        """Delete the elements at ``positions``; values come back in input order.

        ``positions`` refer to the sequence *before* any deletion (the batch
        deletes them as if simultaneously), must be distinct and are
        validated all-or-nothing.  Default: k scalar ``delete`` calls in
        descending position order, no amortisation; the dynamic structures
        override it with one shared-descent batch deletion.
        """
        positions = validate_delete_positions(positions, len(self))
        order = sorted(
            range(len(positions)), key=positions.__getitem__, reverse=True
        )
        out: List[Any] = [None] * len(positions)
        for index in order:
            out[index] = self.delete(positions[index])
        return out

    # ------------------------------------------------------------------
    # Derived operations
    # ------------------------------------------------------------------
    def count(self, value: Any) -> int:
        """Total occurrences of ``value``."""
        return self.rank(value, len(self))

    def count_prefix(self, prefix: Any) -> int:
        """Total elements whose value starts with ``prefix``."""
        return self.rank_prefix(prefix, len(self))

    def contains(self, value: Any) -> bool:
        """True if ``value`` occurs at least once."""
        return self.count(value) > 0

    def __contains__(self, value: Any) -> bool:
        return self.contains(value)

    def __getitem__(self, pos: int) -> Any:
        if pos < 0:
            pos += len(self)
        return self.access(pos)

    def __iter__(self) -> Iterator[Any]:
        for pos in range(len(self)):
            yield self.access(pos)

    def to_list(self) -> List[Any]:
        """Materialise the whole sequence (testing helper)."""
        return list(self)

    def positions(self, value: Any) -> Iterator[int]:
        """All positions holding ``value``, in increasing order."""
        for idx in range(self.count(value)):
            yield self.select(value, idx)

    def positions_prefix(self, prefix: Any) -> Iterator[int]:
        """All positions whose value starts with ``prefix``, in increasing order."""
        for idx in range(self.count_prefix(prefix)):
            yield self.select_prefix(prefix, idx)
