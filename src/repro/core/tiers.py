"""The tier lifecycle: one home for every trie flavour's freeze machinery.

The paper ships the Wavelet Trie in three flavours -- static (Theorem 3.7),
append-only (Theorem 4.3) and fully dynamic (Theorem 4.4) -- and a serving
system needs all three *at once*: a small mutable tier absorbing writes in
front of immutable compressed tiers, LSM-style.  This module makes the
transitions between flavours first-class:

``Tier``
    The protocol every trie flavour satisfies: a ``tier_state``
    (``"mutable"`` or ``"frozen"``), budgeted freeze work via
    ``freeze_step``, a ``to_succinct`` conversion, and ``size_in_bits``
    accounting.

``TrieFreezer`` / ``freeze_trie``
    The dynamic/append-only -> static RRR transition.  ``TrieFreezer``
    de-amortises it with the same budgeted pattern as
    :class:`~repro.bitvector.rrr.IncrementalRRRBuilder` (Lemma 4.7): each
    :meth:`~TrieFreezer.step` call performs a bounded number of block-sized
    units of extraction/encoding work, so a caller can spread a whole-trie
    freeze over many writes with no stop-the-world pass.  ``freeze_trie`` is
    the one-shot form; :mod:`repro.storage` routes all trie freezing through
    it (storage keeps only serialization).

``TieredWaveletTrie``
    The LSM composition built on top: one mutable dynamic tail tier plus an
    ordered list of immutable static RRR tiers.  Writes land in the tail;
    when it reaches ``active_capacity`` it is sealed and a ``TrieFreezer``
    drains it incrementally (``compact_budget`` units per subsequent write).
    Queries merge across tiers with cumulative-count offset arrays: ``rank``
    sums per-tier ranks at clamped positions, ``select`` binary-searches the
    tier owning the requested occurrence, and every ``*_many`` batch variant
    runs one per-tier batch walk.  The logical sequence is the concatenation
    of the tiers, so positions at or past :attr:`~TieredWaveletTrie.mutable_start`
    are insert/delete-able and older positions are immutable until an
    explicit :meth:`~TieredWaveletTrie.compact`.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, Iterable, Iterator, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.bits import kernel
from repro.bits.bitstring import Bits
from repro.bitvector.base import (
    normalize_batch,
    validate_delete_positions,
    validate_select_indexes,
)
from repro.bitvector.rrr import (
    _DEFAULT_BLOCK,
    _DEFAULT_SAMPLE,
    IncrementalRRRBuilder,
    RRRBitVector,
)
from repro.core.interface import (
    IndexedStringSequence,
    check_select_prefix_index,
    validate_select_prefix_indexes,
)
from repro.core.node import WaveletTrieNode
from repro.core.static import WaveletTrie
from repro.core.succinct_static import SuccinctWaveletTrie
from repro.exceptions import (
    InvalidOperationError,
    OutOfBoundsError,
    ValueNotFoundError,
)
from repro.tries.binarize import StringCodec, default_codec

__all__ = ["Tier", "TieredWaveletTrie", "TrieFreezer", "freeze_trie"]

# One extraction unit: 4096 bits = exactly 64 packed words, so consecutive
# full chunks concatenate on word boundaries.
_EXTRACT_CHUNK_BITS = 64 * 64

# Seed rotation shared with DynamicWaveletTrie._new_constant_bitvector.
_SEED_MULTIPLIER = 6364136223846793005


@runtime_checkable
class Tier(Protocol):
    """The lifecycle contract every Wavelet Trie flavour satisfies.

    A tier is a stage in the life of an indexed sequence:

    * ``tier_state`` -- ``"mutable"`` while the structure accepts updates
      (dynamic, append-only, tiered), ``"frozen"`` once it is immutable
      (static pointer trie, succinct trie).
    * ``freeze_step(budget)`` -- perform up to ``budget`` block-sized units
      of work toward the frozen form; returns True once no freeze work
      remains.  Frozen tiers return True immediately; mutable tiers drive a
      :class:`TrieFreezer` (growable tries) or their in-flight compaction
      (:class:`TieredWaveletTrie`).
    * ``to_succinct()`` -- the pointerless succinct form of the current
      content (:class:`~repro.core.succinct_static.SuccinctWaveletTrie`).
    * ``size_in_bits()`` -- the measured memory footprint, the accounting
      side of the lifecycle.

    The protocol is structural (``isinstance`` checks attribute presence via
    ``runtime_checkable``); no flavour inherits from it.
    """

    @property
    def tier_state(self) -> str: ...

    def freeze_step(self, budget: int = 64) -> bool: ...

    def to_succinct(self) -> "SuccinctWaveletTrie": ...

    def size_in_bits(self) -> int: ...


# ----------------------------------------------------------------------
# Budgeted freezing: growable trie -> static RRR trie
# ----------------------------------------------------------------------
class TrieFreezer:
    """De-amortised snapshot of a growable trie into a static RRR trie.

    Clones the Patricia topology up front (O(nodes), no payload work), then
    per internal node runs two budgeted phases: *extraction* pulls the live
    bitvector's content into kernel packed words in word-aligned chunks, and
    *encoding* feeds those words through an
    :class:`~repro.bitvector.rrr.IncrementalRRRBuilder`.  One unit of budget
    is one RRR block (``block_size`` bits) of either phase, so
    :meth:`step`'s worst-case cost is O(budget) blocks regardless of trie
    size -- the Lemma 4.7 de-amortisation applied to a whole trie.

    The source trie must not change length while a freeze is in flight;
    :meth:`step` raises :class:`~repro.exceptions.InvalidOperationError` if
    it does (an equal-length mutation is undetected -- callers own the
    sealing discipline, as :class:`TieredWaveletTrie` does).

    With the default ``block_size``/``sample_rate`` the result is
    structurally identical to building ``RRRBitVector`` over each node's
    content in one shot: classes and offsets are deterministic functions of
    the payload.
    """

    def __init__(
        self,
        trie,
        block_size: int = _DEFAULT_BLOCK,
        sample_rate: int = _DEFAULT_SAMPLE,
    ) -> None:
        self._source = trie
        self._expected_size = len(trie)
        self._block_size = block_size
        self._sample_rate = sample_rate

        frozen = WaveletTrie([], codec=trie.codec, bitvector="rrr")
        frozen._size = len(trie)
        pairs: List[Tuple[WaveletTrieNode, WaveletTrieNode]] = []
        root = trie.root
        if root is not None:
            root_clone = WaveletTrieNode(root.label)
            stack = [(root, root_clone)]
            while stack:
                original, copy = stack.pop()
                if original.is_leaf:
                    continue
                pairs.append((original, copy))
                for bit in (0, 1):
                    child = original.children[bit]
                    child_copy = WaveletTrieNode(child.label)
                    copy.attach(bit, child_copy)
                    stack.append((child, child_copy))
            frozen._root = root_clone
        self._frozen = frozen
        self._pairs = pairs
        self._index = 0
        # Extraction state for the node at self._index.
        self._extract_cursor = 0
        self._words: List[int] = []
        self._ones = 0
        self._builder: Optional[IncrementalRRRBuilder] = None

    @property
    def done(self) -> bool:
        """True once every internal node's bitvector has been encoded."""
        return self._index >= len(self._pairs)

    @property
    def pending_bits(self) -> int:
        """Payload bits still to extract or encode (a progress gauge)."""
        if self.done:
            return 0
        pending = sum(
            len(source.bitvector) for source, _ in self._pairs[self._index + 1 :]
        )
        if self._builder is not None:
            pending += self._builder.pending_bits
        else:
            current = self._pairs[self._index][0].bitvector
            pending += len(current) - self._extract_cursor
        return pending

    def _check_source(self) -> None:
        if len(self._source) != self._expected_size:
            raise InvalidOperationError(
                "trie mutated while a freeze was in flight: length "
                f"{len(self._source)} != sealed length {self._expected_size}"
            )

    def step(self, budget: int = 64) -> int:
        """Perform up to ``budget`` block-sized units of freeze work.

        Returns the units actually done (0 once :attr:`done`).  Each unit is
        one RRR block of extraction or encoding, so a call costs O(budget)
        independent of the trie size.
        """
        if budget < 1:
            raise ValueError("freeze budget must be a positive block count")
        self._check_source()
        done = 0
        while done < budget and not self.done:
            if self._builder is not None:
                done += self._builder.encode_blocks(budget - done)
                if self._builder.done:
                    self._pairs[self._index][1].bitvector = self._builder.finish()
                    self._builder = None
                    self._index += 1
                continue
            source = self._pairs[self._index][0].bitvector
            length = len(source)
            start = self._extract_cursor
            stop = min(start + _EXTRACT_CHUNK_BITS, length)
            width = stop - start
            if width:
                value = 0
                iter_runs = getattr(source, "iter_runs", None)
                if iter_runs is not None:
                    # Run-aware fast path (DynamicBitVector): O(runs) big-int
                    # splicing instead of a per-bit python loop.
                    for bit, run in iter_runs(start, stop):
                        value <<= run
                        if bit:
                            value |= (1 << run) - 1
                else:
                    chunk = Bits.from_iterable(source.iter_range(start, stop))
                    value = chunk.value
                self._words.extend(kernel.pack_value(value, width))
                self._ones += value.bit_count()
            self._extract_cursor = stop
            done += max(1, width // self._block_size)
            if stop >= length:
                self._builder = IncrementalRRRBuilder(
                    self._words,
                    length,
                    self._ones,
                    block_size=self._block_size,
                    sample_rate=self._sample_rate,
                )
                self._words = []
                self._ones = 0
                self._extract_cursor = 0
        return done

    def finish(self) -> WaveletTrie:
        """Drain all remaining work and return the frozen static trie."""
        while not self.done:
            self.step(1024)
        return self._frozen


def freeze_trie(trie) -> Any:
    """The frozen snapshot of any trie tier (the one-shot freeze).

    Static and succinct tries pass through unchanged; a
    :class:`TieredWaveletTrie` returns its
    :meth:`~TieredWaveletTrie.frozen_snapshot`; growable tries (dynamic,
    append-only) are encoded by a :class:`TrieFreezer` into a static RRR
    trie.  :mod:`repro.storage` routes every trie freeze through this
    function so the lifecycle logic lives here, not in the serializers.
    """
    if isinstance(trie, (WaveletTrie, SuccinctWaveletTrie)):
        return trie
    if isinstance(trie, TieredWaveletTrie):
        return trie.frozen_snapshot()
    if hasattr(trie, "root") and hasattr(trie, "codec"):
        return TrieFreezer(trie).finish()
    raise InvalidOperationError(
        f"cannot freeze {type(trie).__name__}: not a Wavelet Trie tier"
    )


# ----------------------------------------------------------------------
# The LSM composition
# ----------------------------------------------------------------------
class TieredWaveletTrie(IndexedStringSequence):
    """LSM-style Wavelet Trie: a mutable dynamic tail over frozen RRR tiers.

    The logical sequence is the concatenation ``frozen[0] ++ ... ++
    frozen[k-1] ++ sealing ++ active``: an ordered list of immutable static
    RRR tiers, at most one *sealing* tier whose freeze is in flight, and the
    mutable :class:`~repro.core.dynamic.DynamicWaveletTrie` tail absorbing
    writes.  ``append`` always lands in the tail; ``insert``/``delete`` are
    allowed at positions >= :attr:`mutable_start` (the LSM retention rule --
    older elements are immutable until :meth:`compact`, mirroring how the
    append-only flavour restricts inserts to the end).

    When the tail reaches ``active_capacity`` elements it is sealed: queries
    keep hitting the sealed dynamic trie while a :class:`TrieFreezer` drains
    it at ``compact_budget`` block units per subsequent write (plus explicit
    :meth:`compact_step` calls), so no single write pays a stop-the-world
    freeze.  Once drained, the static result joins the frozen list and the
    sealed trie is dropped.

    Queries merge across tiers with cumulative offsets: ``access`` binary-
    searches the owning tier, ``rank(v, p)`` sums per-tier ranks at clamped
    local positions, ``select(v, i)`` binary-searches the cumulative
    per-tier occurrence counts for the owning tier, and the ``*_many``
    variants bucket their whole batch per tier and run one per-tier batch
    walk each.
    """

    def __init__(
        self,
        values: Iterable[Any] = (),
        codec: Optional[StringCodec] = None,
        active_capacity: int = 65536,
        compact_budget: int = 32,
        seed: int = 0x5EED,
    ) -> None:
        if active_capacity < 1:
            raise ValueError("active_capacity must be a positive element count")
        if compact_budget < 1:
            raise ValueError("compact_budget must be a positive block count")
        self._codec = codec or default_codec()
        self.active_capacity = active_capacity
        self.compact_budget = compact_budget
        self._seed = seed
        self._frozen: List[WaveletTrie] = []
        self._sealing: Optional[Tuple[Any, TrieFreezer]] = None
        self._active = self._new_active()
        self._size = 0
        values = list(values)
        if values:
            self.extend(values)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _new_active(self):
        from repro.core.dynamic import DynamicWaveletTrie

        self._seed = (self._seed * _SEED_MULTIPLIER + 1) % (1 << 63)
        return DynamicWaveletTrie(codec=self._codec, seed=self._seed)

    @classmethod
    def _from_parts(
        cls,
        frozen: Sequence[WaveletTrie],
        active,
        codec: StringCodec,
        active_capacity: int,
        compact_budget: int,
        seed: int,
    ) -> "TieredWaveletTrie":
        """Assemble an instance from already-built tiers (loaders only)."""
        self = cls.__new__(cls)
        self._codec = codec
        self.active_capacity = active_capacity
        self.compact_budget = compact_budget
        self._seed = seed
        self._frozen = [tier for tier in frozen if len(tier)]
        self._sealing = None
        self._active = active if active is not None else self._new_active()
        self._size = sum(len(tier) for tier in self._frozen) + len(self._active)
        return self

    # ------------------------------------------------------------------
    # Tier bookkeeping
    # ------------------------------------------------------------------
    def _tiers(self) -> List[Any]:
        tiers: List[Any] = list(self._frozen)
        if self._sealing is not None:
            tiers.append(self._sealing[0])
        tiers.append(self._active)
        return tiers

    def _tier_views(self) -> Tuple[List[Any], List[int]]:
        """The non-empty live tiers plus cumulative start offsets (len+1 long).

        Fully-empty tiers (a drained tail, an empty frozen tier handed to a
        loader) are dropped *before* any per-tier walk: every live tier costs
        a near-size-independent python walk in the batch paths, so the
        fan-out constant must track the tiers that actually hold elements.
        The returned offsets are strictly increasing, which also keeps the
        ``bisect`` owner searches unambiguous.
        """
        tiers = [tier for tier in self._tiers() if len(tier)]
        offsets = [0]
        for tier in tiers:
            offsets.append(offsets[-1] + len(tier))
        return tiers, offsets

    @property
    def codec(self) -> StringCodec:
        """The binarisation codec shared by every tier."""
        return self._codec

    @property
    def mutable_start(self) -> int:
        """First position inside the mutable tail tier."""
        return self._size - len(self._active)

    @property
    def tier_count(self) -> int:
        """Number of live tiers (frozen + sealing + the mutable tail)."""
        return len(self._frozen) + (1 if self._sealing is not None else 0) + 1

    def tier_info(self) -> List[Dict[str, Any]]:
        """Per-tier description, oldest first: kind, state, elements, bits."""
        rows: List[Dict[str, Any]] = []
        for tier in self._frozen:
            rows.append(
                {
                    "kind": type(tier).__name__,
                    "state": "frozen",
                    "elements": len(tier),
                    "bits": tier.size_in_bits(),
                }
            )
        if self._sealing is not None:
            sealed, freezer = self._sealing
            rows.append(
                {
                    "kind": type(sealed).__name__,
                    "state": "sealing",
                    "elements": len(sealed),
                    "bits": sealed.size_in_bits(),
                    "pending_freeze_bits": freezer.pending_bits,
                }
            )
        rows.append(
            {
                "kind": type(self._active).__name__,
                "state": "mutable",
                "elements": len(self._active),
                "bits": self._active.size_in_bits(),
            }
        )
        return rows

    # ------------------------------------------------------------------
    # Sealing and compaction
    # ------------------------------------------------------------------
    def _maybe_seal(self) -> None:
        if self._sealing is None and len(self._active) >= self.active_capacity:
            sealed = self._active
            self._sealing = (sealed, TrieFreezer(sealed))
            self._active = self._new_active()

    def _advance(self, budget: int) -> int:
        if self._sealing is None or budget < 1:
            return 0
        _, freezer = self._sealing
        done = freezer.step(budget)
        if freezer.done:
            self._frozen.append(freezer.finish())
            self._sealing = None
        return done

    def _after_write(self, written: int) -> None:
        self._maybe_seal()
        self._advance(self.compact_budget * written)

    def compact_step(self, budget: Optional[int] = None) -> int:
        """Advance the in-flight freeze by ``budget`` block units.

        Seals the tail first if it is at capacity; defaults to
        ``compact_budget`` units.  Returns the units of work done (0 when no
        freeze is pending) -- the hook for driving compaction from an event
        loop instead of piggybacking on writes.
        """
        self._maybe_seal()
        return self._advance(self.compact_budget if budget is None else budget)

    def compact(self, merge: bool = True) -> None:
        """Drain all pending freeze work; optionally merge to a single tier.

        Finishes the in-flight seal, freezes the current tail (leaving a
        fresh empty one), and with ``merge=True`` rebuilds every frozen tier
        into one static RRR trie -- after which the whole sequence is
        mutable-window-free except for the new empty tail.  This is the
        explicit stop-the-world operation; the budgeted path is
        :meth:`compact_step`.
        """
        if self._sealing is not None:
            _, freezer = self._sealing
            self._frozen.append(freezer.finish())
            self._sealing = None
        if len(self._active):
            self._frozen.append(freeze_trie(self._active))
            self._active = self._new_active()
        if merge and len(self._frozen) > 1:
            combined: List[Any] = []
            for tier in self._frozen:
                combined.extend(tier.iter_range(0, len(tier)))
            self._frozen = [WaveletTrie(combined, codec=self._codec)]

    def frozen_snapshot(self) -> "TieredWaveletTrie":
        """A fully frozen copy: every tier static, an empty mutable tail.

        Non-mutating: already-frozen tiers are shared with the copy; the
        sealing and active tiers are freshly frozen.  This is what
        :func:`freeze_trie` (and hence RWT2 image persistence) captures.
        """
        frozen = list(self._frozen)
        if self._sealing is not None:
            frozen.append(TrieFreezer(self._sealing[0]).finish())
        if len(self._active):
            frozen.append(TrieFreezer(self._active).finish())
        return TieredWaveletTrie._from_parts(
            frozen,
            None,
            self._codec,
            self.active_capacity,
            self.compact_budget,
            self._seed,
        )

    def to_static(self) -> WaveletTrie:
        """One static RRR trie over the full logical sequence (non-mutating)."""
        tiers = self._tiers()
        if len(tiers) == 1:
            return freeze_trie(tiers[0])
        combined: List[Any] = []
        for tier in tiers:
            combined.extend(tier.iter_range(0, len(tier)))
        return WaveletTrie(combined, codec=self._codec)

    # ------------------------------------------------------------------
    # Tier protocol
    # ------------------------------------------------------------------
    @property
    def tier_state(self) -> str:
        """Always ``"mutable"``: the tail tier accepts writes."""
        return "mutable"

    def freeze_step(self, budget: int = 64) -> bool:
        """Advance pending compaction; True when no freeze work remains."""
        self.compact_step(budget)
        return self._sealing is None

    def to_succinct(self) -> SuccinctWaveletTrie:
        """The pointerless succinct form of the full logical sequence."""
        return self.to_static().to_succinct()

    def size_in_bits(self) -> int:
        """Measured footprint: the sum over live tiers."""
        return sum(tier.size_in_bits() for tier in self._tiers())

    # ------------------------------------------------------------------
    # Introspection shared with the pointer tries (CLI info & reports)
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[WaveletTrieNode]:
        """All nodes of all live tiers, tier order then preorder."""
        for tier in self._tiers():
            yield from tier.nodes()

    def node_count(self) -> int:
        """Total node count across live tiers."""
        return sum(tier.node_count() for tier in self._tiers())

    def distinct_count(self) -> int:
        """Number of distinct values in the logical sequence (cross-tier)."""
        values = set()
        for tier in self._tiers():
            if len(tier):
                values.update(tier.distinct_values())
        return len(values)

    def distinct_values(self) -> List[Any]:
        """Sorted distinct values of the logical sequence."""
        values = set()
        for tier in self._tiers():
            if len(tier):
                values.update(tier.distinct_values())
        return sorted(values)

    def average_height(self) -> float:
        """Mean leaf depth over all elements (exact: per-tier weighted mean)."""
        if not self._size:
            return 0.0
        total = 0.0
        for tier in self._tiers():
            if len(tier):
                total += tier.average_height() * len(tier)
        return total / self._size

    # ------------------------------------------------------------------
    # Scalar queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def _check_position(self, pos: int) -> None:
        if not 0 <= pos < self._size:
            raise OutOfBoundsError(
                f"position {pos} out of range for length {self._size}"
            )

    def _check_rank_pos(self, pos: int) -> None:
        if not 0 <= pos <= self._size:
            raise OutOfBoundsError(
                f"rank position {pos} out of range for length {self._size}"
            )

    def access(self, pos: int) -> Any:
        """Value at position ``pos`` (binary search for the owning tier)."""
        self._check_position(pos)
        tiers, offsets = self._tier_views()
        index = bisect_right(offsets, pos) - 1
        return tiers[index].access(pos - offsets[index])

    def rank(self, value: Any, pos: int) -> int:
        """Occurrences of ``value`` in ``[0, pos)``: per-tier ranks summed."""
        self._check_rank_pos(pos)
        tiers, offsets = self._tier_views()
        total = 0
        for tier, offset in zip(tiers, offsets):
            if offset >= pos:
                break
            local = min(pos - offset, len(tier))
            if local > 0:
                total += tier.rank(value, local)
        return total

    def _occurrence_cumsums(self, count_fn) -> Tuple[List[Any], List[int], List[int], int]:
        """Tiers, offsets and cumulative per-tier occurrence counts."""
        tiers, offsets = self._tier_views()
        cumulative = [0]
        for tier in tiers:
            cumulative.append(cumulative[-1] + (count_fn(tier) if len(tier) else 0))
        return tiers, offsets, cumulative, cumulative[-1]

    def select(self, value: Any, idx: int) -> int:
        """Position of the ``idx``-th occurrence (binary search over tiers)."""
        if idx < 0:
            raise OutOfBoundsError("select index must be non-negative")
        tiers, offsets, cumulative, total = self._occurrence_cumsums(
            lambda tier: tier.count(value)
        )
        if total == 0:
            raise ValueNotFoundError(
                f"value {value!r} does not occur in the sequence"
            )
        if idx >= total:
            raise OutOfBoundsError(
                f"select index {idx} out of range: only {total} occurrences"
            )
        index = bisect_right(cumulative, idx) - 1
        return offsets[index] + tiers[index].select(value, idx - cumulative[index])

    def rank_prefix(self, prefix: Any, pos: int) -> int:
        """Prefix occurrences in ``[0, pos)``: per-tier prefix ranks summed."""
        self._check_rank_pos(pos)
        tiers, offsets = self._tier_views()
        total = 0
        for tier, offset in zip(tiers, offsets):
            if offset >= pos:
                break
            local = min(pos - offset, len(tier))
            if local > 0:
                total += tier.rank_prefix(prefix, local)
        return total

    def select_prefix(self, prefix: Any, idx: int) -> int:
        """Position of the ``idx``-th element carrying ``prefix``."""
        tiers, offsets, cumulative, total = self._occurrence_cumsums(
            lambda tier: tier.count_prefix(prefix)
        )
        if total == 0:
            raise ValueNotFoundError(f"no element has prefix {prefix!r}")
        check_select_prefix_index(prefix, idx, total)
        index = bisect_right(cumulative, idx) - 1
        return offsets[index] + tiers[index].select_prefix(
            prefix, idx - cumulative[index]
        )

    # ------------------------------------------------------------------
    # Batch queries: one per-tier batch walk each
    # ------------------------------------------------------------------
    def access_many(self, positions: Sequence[int]) -> List[Any]:
        """Values at each position, amortised via per-tier batch walks.

        Positions are bucketed by owning tier (one binary search each), each
        tier answers its bucket with a single ``access_many`` walk, and the
        results scatter back into input order.
        """
        positions = normalize_batch(positions)
        out: List[Any] = [None] * len(positions)
        if not len(positions):
            return out
        tiers, offsets = self._tier_views()
        buckets: Dict[int, Tuple[List[int], List[int]]] = {}
        for slot, pos in enumerate(positions):
            pos = int(pos)
            self._check_position(pos)
            index = bisect_right(offsets, pos) - 1
            slots, locals_ = buckets.setdefault(index, ([], []))
            slots.append(slot)
            locals_.append(pos - offsets[index])
        for index, (slots, locals_) in buckets.items():
            for slot, value in zip(slots, tiers[index].access_many(locals_)):
                out[slot] = value
        return out

    def rank_many(self, value: Any, positions: Sequence[int]) -> List[int]:
        """Rank at each position, amortised: one batch walk per tier.

        Each tier ranks the whole batch at positions clamped to its local
        range; the per-position results sum across tiers.
        """
        positions = normalize_batch(positions)
        if not len(positions):
            return []
        for pos in positions:
            self._check_rank_pos(int(pos))
        totals = [0] * len(positions)
        tiers, offsets = self._tier_views()
        max_pos = max(int(pos) for pos in positions)
        for tier, offset in zip(tiers, offsets):
            if offset >= max_pos:
                # Tiers are offset-ordered, so every later tier contributes 0
                # to every position in the batch: stop the per-tier fan-out.
                break
            length = len(tier)
            locals_ = [min(max(int(pos) - offset, 0), length) for pos in positions]
            for slot, local_rank in enumerate(tier.rank_many(value, locals_)):
                totals[slot] += local_rank
        return totals

    def select_many(self, value: Any, indexes: Sequence[int]) -> List[int]:
        """Positions of the requested occurrences, amortised per tier.

        Counts each tier's occurrences once, buckets the index batch by
        owning tier against the cumulative counts, and runs one
        ``select_many`` per touched tier.
        """
        indexes = normalize_batch(indexes)
        if not len(indexes):
            return []
        tiers, offsets, cumulative, total = self._occurrence_cumsums(
            lambda tier: tier.count(value)
        )
        if total == 0:
            raise ValueNotFoundError(
                f"value {value!r} does not occur in the sequence"
            )
        indexes = validate_select_indexes(indexes, total, repr(value))
        return self._select_scatter(
            tiers, offsets, cumulative, indexes,
            lambda tier, local: tier.select_many(value, local),
        )

    def rank_prefix_many(self, prefix: Any, positions: Sequence[int]) -> List[int]:
        """Prefix rank at each position, amortised: one batch walk per tier."""
        positions = normalize_batch(positions)
        if not len(positions):
            return []
        for pos in positions:
            self._check_rank_pos(int(pos))
        totals = [0] * len(positions)
        tiers, offsets = self._tier_views()
        max_pos = max(int(pos) for pos in positions)
        for tier, offset in zip(tiers, offsets):
            if offset >= max_pos:
                # Offset-ordered tiers: later tiers contribute 0 everywhere.
                break
            length = len(tier)
            locals_ = [min(max(int(pos) - offset, 0), length) for pos in positions]
            for slot, local_rank in enumerate(
                tier.rank_prefix_many(prefix, locals_)
            ):
                totals[slot] += local_rank
        return totals

    def select_prefix_many(self, prefix: Any, indexes: Sequence[int]) -> List[int]:
        """Positions of the requested prefix matches, amortised per tier."""
        indexes = normalize_batch(indexes)
        if not len(indexes):
            return []
        tiers, offsets, cumulative, total = self._occurrence_cumsums(
            lambda tier: tier.count_prefix(prefix)
        )
        if total == 0:
            raise ValueNotFoundError(f"no element has prefix {prefix!r}")
        indexes = validate_select_prefix_indexes(indexes, total, prefix)
        return self._select_scatter(
            tiers, offsets, cumulative, indexes,
            lambda tier, local: tier.select_prefix_many(prefix, local),
        )

    def _select_scatter(self, tiers, offsets, cumulative, indexes, select_fn):
        """Bucket validated select indexes per tier, batch-select, scatter."""
        out = [0] * len(indexes)
        buckets: Dict[int, Tuple[List[int], List[int]]] = {}
        for slot, idx in enumerate(indexes):
            index = bisect_right(cumulative, idx) - 1
            slots, locals_ = buckets.setdefault(index, ([], []))
            slots.append(slot)
            locals_.append(idx - cumulative[index])
        for index, (slots, locals_) in buckets.items():
            positions = select_fn(tiers[index], locals_)
            offset = offsets[index]
            for slot, position in zip(slots, positions):
                out[slot] = offset + position
        return out

    # ------------------------------------------------------------------
    # Range analytics: per-tier delegation + cross-tier merge
    # ------------------------------------------------------------------
    def _check_range(self, start: int, stop: int) -> None:
        if not (0 <= start <= stop <= self._size):
            raise OutOfBoundsError(
                f"range [{start}, {stop}) invalid for sequence of length {self._size}"
            )

    def _local_ranges(self, start: int, stop: int):
        """Yield ``(tier, local_start, local_stop)`` covering ``[start, stop)``."""
        tiers, offsets = self._tier_views()
        for tier, offset in zip(tiers, offsets):
            length = len(tier)
            lo = min(max(start - offset, 0), length)
            hi = min(max(stop - offset, 0), length)
            if lo < hi:
                yield tier, lo, hi

    def iter_range(self, start: int, stop: int) -> Iterator[Any]:
        """Elements at positions ``[start, stop)``: per-tier sequential scans."""
        self._check_range(start, stop)
        for tier, lo, hi in self._local_ranges(start, stop):
            yield from tier.iter_range(lo, hi)

    def _binarised_key(self, value: Any) -> Tuple[int, ...]:
        key = self._codec.to_bits(value)
        return tuple(key[i] for i in range(len(key)))

    def distinct_in_range(
        self, start: int, stop: int, prefix: Any = None
    ) -> List[Tuple[Any, int]]:
        """Distinct values in ``[0-based range)`` with counts, summed across
        tiers, in trie (lexicographic binarised) order like the static trie."""
        self._check_range(start, stop)
        counts: Dict[Any, int] = {}
        for tier, lo, hi in self._local_ranges(start, stop):
            for value, count in tier.distinct_in_range(lo, hi, prefix):
                counts[value] = counts.get(value, 0) + count
        return sorted(
            counts.items(), key=lambda item: self._binarised_key(item[0])
        )

    def count_distinct_in_range(
        self, start: int, stop: int, prefix: Any = None
    ) -> int:
        """Number of distinct values in the range (optionally under a prefix)."""
        return len(self.distinct_in_range(start, stop, prefix))

    def top_k_in_range(
        self, start: int, stop: int, k: int, prefix: Any = None
    ) -> List[Tuple[Any, int]]:
        """The ``k`` most frequent values in the range, most frequent first;
        ties break in trie (lexicographic binarised) order."""
        if k <= 0:
            return []
        merged = self.distinct_in_range(start, stop, prefix)
        ranked = sorted(
            merged, key=lambda item: (-item[1], self._binarised_key(item[0]))
        )
        return ranked[:k]

    def range_count(self, value: Any, start: int, stop: int) -> int:
        """Occurrences of ``value`` within positions ``[start, stop)``."""
        self._check_range(start, stop)
        return self.rank(value, stop) - self.rank(value, start)

    def range_count_prefix(self, prefix: Any, start: int, stop: int) -> int:
        """Elements with ``prefix`` within positions ``[start, stop)``."""
        self._check_range(start, stop)
        return self.rank_prefix(prefix, stop) - self.rank_prefix(prefix, start)

    # ------------------------------------------------------------------
    # Updates: the mutable tail window
    # ------------------------------------------------------------------
    def _check_window(self, pos: int, what: str) -> None:
        start = self.mutable_start
        if pos < start:
            raise InvalidOperationError(
                f"cannot {what} at position {pos}: positions below "
                f"{start} live in frozen tiers (TieredWaveletTrie mutates "
                "only its tail tier; run compact() to rebuild, or use "
                "DynamicWaveletTrie for full mutability)"
            )

    def append(self, value: Any) -> None:
        """Append to the tail tier; advances compaction by the budget."""
        self._active.append(value)
        self._size += 1
        self._after_write(1)

    def extend(self, values: Iterable[Any]) -> None:
        """Bulk append, chunked so sealing happens on capacity boundaries."""
        values = list(values)
        cursor = 0
        while cursor < len(values):
            self._maybe_seal()
            room = self.active_capacity - len(self._active)
            if room <= 0:
                # A seal is already in flight: overshoot in bounded chunks.
                room = self.active_capacity
            chunk = values[cursor : cursor + room]
            self._active.extend(chunk)
            self._size += len(chunk)
            cursor += len(chunk)
            self._maybe_seal()
            self._advance(self.compact_budget * len(chunk))

    def insert(self, value: Any, pos: int) -> None:
        """Insert inside the mutable tail window (``pos >= mutable_start``)."""
        if not 0 <= pos <= self._size:
            raise OutOfBoundsError(
                f"insert position {pos} out of range for length {self._size}"
            )
        self._check_window(pos, "insert")
        self._active.insert(value, pos - self.mutable_start)
        self._size += 1
        self._after_write(1)

    def insert_many(self, values: Sequence[Any], pos: int) -> None:
        """Bulk insert at one tail-window position, amortised.

        Delegates to the dynamic tier's contiguous-block ``insert_many``
        (one topology pass + one ``insert_many`` per touched node), then
        advances compaction by one budget per inserted element.
        """
        values = list(values)
        if not values:
            return
        if not 0 <= pos <= self._size:
            raise OutOfBoundsError(
                f"insert position {pos} out of range for length {self._size}"
            )
        self._check_window(pos, "insert")
        self._active.insert_many(values, pos - self.mutable_start)
        self._size += len(values)
        self._after_write(len(values))

    def delete(self, pos: int) -> Any:
        """Delete inside the mutable tail window; returns the value."""
        self._check_position(pos)
        self._check_window(pos, "delete")
        value = self._active.delete(pos - self.mutable_start)
        self._size -= 1
        self._advance(self.compact_budget)
        return value

    def delete_many(self, positions: Sequence[int]) -> List[Any]:
        """Bulk delete inside the tail window, amortised, all-or-nothing.

        Validates the whole batch (bounds, duplicates, window) before any
        mutation, then delegates to the dynamic tier's batched
        ``delete_many``; values return in input order.
        """
        positions = validate_delete_positions(positions, self._size)
        if not positions:
            return []
        start = self.mutable_start
        for pos in positions:
            self._check_window(pos, "delete")
        values = self._active.delete_many([pos - start for pos in positions])
        self._size -= len(positions)
        self._advance(self.compact_budget * len(positions))
        return values
