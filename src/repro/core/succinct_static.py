"""A fully succinct static Wavelet Trie (the literal Theorem 3.7 layout).

The default :class:`~repro.core.static.WaveletTrie` keeps one Python object
per node, which is convenient for navigation but charges pointer space.  This
module provides :class:`SuccinctWaveletTrie`, which stores exactly the
components of the paper's static representation and *navigates through them*:

* the trie topology as a DFUDS parenthesis sequence (``2k + o(k)`` bits);
* the node labels concatenated in preorder in one bitvector ``L``, delimited
  by an Elias-Fano partial-sum structure;
* one RRR bitvector per internal node, indexed by the node's *internal rank*
  (the equivalent of concatenating the encodings and delimiting them);
* a small indicator bitvector marking which preorder nodes are internal.

Queries descend the DFUDS topology, so no Python node objects exist at query
time; the pointer-based and succinct variants are cross-checked against each
other in the test suite.  Updates are not supported (the structure is static
by construction).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.bits.bitbuffer import BitBuffer
from repro.bits.bitstring import Bits
from repro.bitvector.base import normalize_batch
from repro.bitvector.plain import PlainBitVector
from repro.bitvector.rrr import RRRBitVector
from repro.core.interface import (
    IndexedStringSequence,
    check_select_prefix_index,
    validate_select_prefix_indexes,
)
from repro.core.static import WaveletTrie
from repro.exceptions import (
    ImmutableStructureError,
    OutOfBoundsError,
    ValueNotFoundError,
)
from repro.succinct.dfuds import DFUDSTree
from repro.succinct.partial_sums import StaticPartialSums
from repro.tries.binarize import StringCodec, default_codec

__all__ = ["SuccinctWaveletTrie"]


class _LazyNodeBitvectors:
    """Per-internal-node RRR views over a frozen image, materialised lazily.

    Keeps frozen-image opens O(1) in the node count: the wrapper object for
    an internal node's bitvector is built (zero-copy, from the image's
    sections) on first access and cached.  Quacks like the eager list the
    in-memory build stores in ``_bitvectors``.
    """

    __slots__ = ("_image", "_prefix", "_metas", "_cache")

    def __init__(self, image, prefix: str, metas: Sequence[dict]) -> None:
        self._image = image
        self._prefix = prefix
        self._metas = metas
        self._cache: List[Optional[RRRBitVector]] = [None] * len(metas)

    def __len__(self) -> int:
        return len(self._metas)

    def __getitem__(self, rank: int) -> RRRBitVector:
        vector = self._cache[rank]
        if vector is None:
            vector = RRRBitVector.from_words_image(
                self._image, f"{self._prefix}bv{rank}.", self._metas[rank]
            )
            self._cache[rank] = vector
        return vector

    def __iter__(self):
        return (self[rank] for rank in range(len(self._metas)))


class SuccinctWaveletTrie(IndexedStringSequence):
    """Static Wavelet Trie stored in the Theorem 3.7 succinct layout."""

    def __init__(
        self,
        values: Iterable[Any] = (),
        codec: Optional[StringCodec] = None,
    ) -> None:
        self._codec = codec or default_codec()
        values = list(values)
        # Build the pointer version once, then flatten it.
        self._init_from_pointer(WaveletTrie(values, codec=self._codec, bitvector="rrr"))

    @classmethod
    def from_pointer_trie(cls, trie: WaveletTrie) -> "SuccinctWaveletTrie":
        """Flatten an existing pointer-based static trie (the frozen -> succinct
        tier transition; see :mod:`repro.core.tiers`).

        Non-RRR node bitvectors are re-encoded to RRR so the result always
        matches the Theorem 3.7 layout.
        """
        self = cls.__new__(cls)
        self._codec = trie.codec
        self._init_from_pointer(trie)
        return self

    def _init_from_pointer(self, pointer_trie: WaveletTrie) -> None:
        """Flatten ``pointer_trie`` in preorder (children visited 0 then 1,
        matching the DFUDS child order) into the succinct components."""
        self._size = len(pointer_trie)
        if pointer_trie.root is None:
            self._dfuds = None
            self._labels = None
            self._label_offsets = None
            self._is_internal = None
            self._bitvectors: List[RRRBitVector] = []
            return
        degrees: List[int] = []
        labels: List[Bits] = []
        internal_flags: List[int] = []
        bitvectors: List[RRRBitVector] = []
        stack = [pointer_trie.root]
        while stack:
            node = stack.pop()
            labels.append(node.label)
            if node.is_leaf:
                degrees.append(0)
                internal_flags.append(0)
            else:
                degrees.append(2)
                internal_flags.append(1)
                vector = node.bitvector
                if not isinstance(vector, RRRBitVector):
                    vector = RRRBitVector(
                        Bits.from_iterable(vector.iter_range(0, len(vector)))
                    )
                bitvectors.append(vector)
                stack.append(node.children[1])
                stack.append(node.children[0])
        self._dfuds = DFUDSTree.from_degrees(degrees)
        buffer = BitBuffer()
        for label in labels:
            buffer.append_bits(label)
        self._labels = PlainBitVector(buffer.to_bits())
        self._label_offsets = StaticPartialSums(len(label) for label in labels)
        self._is_internal = PlainBitVector(internal_flags)
        self._bitvectors = bitvectors

    # ------------------------------------------------------------------
    # Frozen-image (RWT2) exchange -- see docs/ARCHITECTURE.md, "Storage"
    # ------------------------------------------------------------------
    def to_words_image(self, sink, prefix: str = "") -> dict:
        """Write every Theorem 3.7 component into a frozen-image sink.

        The codec is *not* recorded here; the storage layer stores it in the
        container header and passes it back to :meth:`from_words_image`.
        Internal node ``r`` (by internal rank) writes its RRR bitvector
        under section prefix ``prefix + "bv{r}."``.
        """
        if self._dfuds is None:
            return {"size": self._size, "empty": True}
        return {
            "size": self._size,
            "empty": False,
            "dfuds": self._dfuds.to_words_image(sink, prefix + "dfuds."),
            "labels": self._labels.to_words_image(sink, prefix + "labels."),
            "label_offsets": self._label_offsets.to_words_image(
                sink, prefix + "loff."
            ),
            "is_internal": self._is_internal.to_words_image(sink, prefix + "int."),
            "bitvectors": [
                vector.to_words_image(sink, f"{prefix}bv{rank}.")
                for rank, vector in enumerate(self._bitvectors)
            ],
        }

    @classmethod
    def from_words_image(
        cls, image, prefix: str, meta: dict, codec: Optional[StringCodec] = None
    ) -> "SuccinctWaveletTrie":
        """Open from a frozen image in O(1) time regardless of node count.

        Topology, labels and flags alias the mapped buffer; the per-node RRR
        bitvectors are wrapped lazily on first touch (each wrap is itself
        zero-copy).
        """
        self = cls.__new__(cls)
        self._codec = codec or default_codec()
        self._size = int(meta["size"])
        if meta.get("empty"):
            self._dfuds = None
            self._labels = None
            self._label_offsets = None
            self._is_internal = None
            self._bitvectors = []
            return self
        self._dfuds = DFUDSTree.from_words_image(
            image, prefix + "dfuds.", meta["dfuds"]
        )
        self._labels = PlainBitVector.from_words_image(
            image, prefix + "labels.", meta["labels"]
        )
        self._label_offsets = StaticPartialSums.from_words_image(
            image, prefix + "loff.", meta["label_offsets"]
        )
        self._is_internal = PlainBitVector.from_words_image(
            image, prefix + "int.", meta["is_internal"]
        )
        self._bitvectors = _LazyNodeBitvectors(image, prefix, meta["bitvectors"])
        return self

    # ------------------------------------------------------------------
    # Succinct navigation helpers
    # ------------------------------------------------------------------
    def _label(self, node: int) -> Bits:
        start = self._label_offsets.start(node)
        length = self._label_offsets.length(node)
        if length == 0:
            return Bits.empty()
        # Word-sliced through the kernel: one two-word extraction for typical
        # labels instead of a per-bit append loop.
        return self._labels.extract_bits(start, start + length)

    def _is_leaf(self, node: int) -> bool:
        return self._is_internal.access(node) == 0

    def _node_bitvector(self, node: int) -> RRRBitVector:
        internal_rank = self._is_internal.rank(1, node)
        return self._bitvectors[internal_rank]

    def _child(self, node: int, bit: int) -> int:
        return self._dfuds.child(node, bit)

    # ------------------------------------------------------------------
    # IndexedStringSequence interface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def access(self, pos: int) -> Any:
        """The element at position ``pos`` (Lemma 3.2 over the succinct layout)."""
        if not 0 <= pos < self._size:
            raise OutOfBoundsError(
                f"position {pos} out of range for length {self._size}"
            )
        node = 0
        out = self._label(node)
        while not self._is_leaf(node):
            vector = self._node_bitvector(node)
            bit = vector.access(pos)
            pos = vector.rank(bit, pos)
            node = self._child(node, bit)
            out = out.appended(bit) + self._label(node)
        return self._codec.from_bits(out)

    def rank(self, value: Any, pos: int) -> int:
        """Occurrences of ``value`` in the first ``pos`` positions."""
        return self._rank_bits(self._codec.to_bits(value), pos, full_match=True)

    def rank_prefix(self, prefix: Any, pos: int) -> int:
        """Elements with ``prefix`` among the first ``pos`` positions."""
        return self._rank_bits(self._codec.prefix_to_bits(prefix), pos, full_match=False)

    def _rank_bits(self, key: Bits, pos: int, full_match: bool) -> int:
        if not 0 <= pos <= self._size:
            raise OutOfBoundsError(
                f"position {pos} out of range for length {self._size}"
            )
        if self._size == 0 or pos == 0:
            return 0
        node = 0
        remaining = key
        while True:
            label = self._label(node)
            lcp = remaining.lcp_length(label)
            if not full_match and lcp == len(remaining):
                return pos
            if self._is_leaf(node):
                if full_match and remaining == label:
                    return pos
                return 0
            if lcp < len(label) or len(remaining) == len(label):
                return 0
            bit = remaining[len(label)]
            vector = self._node_bitvector(node)
            pos = vector.rank(bit, pos)
            if pos == 0:
                return 0
            remaining = remaining.suffix_from(len(label) + 1)
            node = self._child(node, bit)

    def select(self, value: Any, idx: int) -> int:
        """Position of the ``idx``-th occurrence of ``value``."""
        return self._select_bits(self._codec.to_bits(value), idx, full_match=True)

    def select_prefix(self, prefix: Any, idx: int) -> int:
        """Position of the ``idx``-th element whose value starts with ``prefix``."""
        return self._select_bits(
            self._codec.prefix_to_bits(prefix), idx, full_match=False, label=prefix
        )

    def _locate(
        self, key: Bits, full_match: bool, label: Any = None
    ) -> Tuple[int, List[Tuple[int, int]]]:
        """Descend to ``key``'s node, recording (internal node, branching bit)."""
        shown = key if label is None else label
        if self._size == 0:
            raise ValueNotFoundError("the sequence is empty")
        node = 0
        remaining = key
        path: List[Tuple[int, int]] = []
        while True:
            node_label = self._label(node)
            lcp = remaining.lcp_length(node_label)
            if not full_match and lcp == len(remaining):
                return node, path
            if self._is_leaf(node):
                if full_match and remaining == node_label:
                    return node, path
                raise ValueNotFoundError(f"value {shown!r} does not occur")
            if lcp < len(node_label) or len(remaining) == len(node_label):
                raise ValueNotFoundError(f"value {shown!r} does not occur")
            bit = remaining[len(node_label)]
            path.append((node, bit))
            remaining = remaining.suffix_from(len(node_label) + 1)
            node = self._child(node, bit)

    def _select_bits(
        self, key: Bits, idx: int, full_match: bool, label: Any = None
    ) -> int:
        if full_match and idx < 0:
            # Mirror WaveletTrieBase.select_bits: the full-match path rejects
            # negative indexes before locating (prefix mode instead raises
            # the canonical count-bearing error after the locate).
            raise OutOfBoundsError("select index must be non-negative")
        node, path = self._locate(key, full_match, label=label)
        available = self._subsequence_length(node, path)
        if full_match:
            if idx >= available:
                raise OutOfBoundsError(
                    f"select index {idx} out of range: only {available} matches"
                )
        else:
            check_select_prefix_index(
                key if label is None else label, idx, available
            )
        for ancestor, bit in reversed(path):
            idx = self._node_bitvector(ancestor).select(bit, idx)
        return idx

    def rank_prefix_many(self, prefix: Any, positions) -> List[int]:
        """``rank_prefix(prefix, pos)`` for each position (batched RankPrefix).

        One shared DFUDS descent to the prefix node; at every internal node
        on the way the whole position vector is mapped through the RRR
        bitvector's batch ``rank_many`` -- amortised, one per-node batch pass
        instead of one full succinct descent per queried position.
        """
        key = self._codec.prefix_to_bits(prefix)
        positions = normalize_batch(positions)
        for pos in positions:
            if not 0 <= pos <= self._size:
                raise OutOfBoundsError(
                    f"position {pos} out of range for length {self._size}"
                )
        if self._size == 0 or not len(positions):
            return [0] * len(positions)
        node = 0
        remaining = key
        current: List[int] = [int(pos) for pos in positions]
        while True:
            label = self._label(node)
            lcp = remaining.lcp_length(label)
            if lcp == len(remaining):
                return current
            if self._is_leaf(node) or lcp < len(label) or len(remaining) == len(label):
                return [0] * len(current)
            bit = remaining[len(label)]
            current = self._node_bitvector(node).rank_many(bit, current)
            remaining = remaining.suffix_from(len(label) + 1)
            node = self._child(node, bit)

    def select_prefix_many(self, prefix: Any, indexes) -> List[int]:
        """``select_prefix(prefix, idx)`` for each index (batched SelectPrefix).

        The prefix node is located with one DFUDS descent and the recorded
        path unwound with each RRR bitvector's batched ``select_many`` (one
        shared directory pass per node) -- amortised O(|p| + depth_p (D +
        q log q)) for q queries instead of q full succinct SelectPrefix
        walks.  Results come back in input order.
        """
        indexes = normalize_batch(indexes)
        if not len(indexes):
            return []  # an empty batch never raises, like the default loop
        key = self._codec.prefix_to_bits(prefix)
        node, path = self._locate(key, full_match=False, label=prefix)
        available = self._subsequence_length(node, path)
        current = validate_select_prefix_indexes(indexes, available, prefix)
        for ancestor, bit in reversed(path):
            current = self._node_bitvector(ancestor).select_many(bit, current)
        return list(current)

    def _subsequence_length(self, node: int, path: List[Tuple[int, int]]) -> int:
        if not path:
            return self._size
        parent, bit = path[-1]
        return self._node_bitvector(parent).count(bit)

    # ------------------------------------------------------------------
    # Updates are rejected
    # ------------------------------------------------------------------
    # ------------------------------------------------------------------
    # Tier protocol (see repro.core.tiers)
    # ------------------------------------------------------------------
    @property
    def tier_state(self) -> str:
        """Always ``"frozen"``: the succinct trie is immutable."""
        return "frozen"

    def freeze_step(self, budget: int = 64) -> bool:
        """No freeze work on an already-frozen tier; returns True."""
        return True

    def to_succinct(self) -> "SuccinctWaveletTrie":
        """Already succinct: returns ``self``."""
        return self

    def append(self, value: Any) -> None:
        raise ImmutableStructureError("SuccinctWaveletTrie is static")

    def insert(self, value: Any, pos: int) -> None:
        raise ImmutableStructureError("SuccinctWaveletTrie is static")

    def delete(self, pos: int) -> Any:
        raise ImmutableStructureError("SuccinctWaveletTrie is static")

    # ------------------------------------------------------------------
    # Statistics and space accounting (the Theorem 3.7 decomposition)
    # ------------------------------------------------------------------
    def node_count(self) -> int:
        """Number of trie nodes."""
        return self._dfuds.node_count if self._dfuds is not None else 0

    def distinct_count(self) -> int:
        """Number of distinct values (= leaves)."""
        if self._is_internal is None:
            return 0
        return self._is_internal.count(0)

    def size_in_bits(self) -> int:
        """Total measured size of the succinct layout."""
        return sum(self.space_breakdown().values())

    def space_breakdown(self) -> dict:
        """Sizes of the Theorem 3.7 components, in bits."""
        if self._dfuds is None:
            return {
                "topology_dfuds": 0,
                "labels": 0,
                "label_delimiters": 0,
                "internal_flags": 0,
                "bitvectors": 0,
                "bitvector_delimiters": 0,
            }
        bitvector_sizes = [vector.size_in_bits() for vector in self._bitvectors]
        return {
            "topology_dfuds": self._dfuds.size_in_bits(),
            "labels": self._labels.size_in_bits(),
            "label_delimiters": self._label_offsets.size_in_bits(),
            "internal_flags": self._is_internal.size_in_bits(),
            "bitvectors": sum(bitvector_sizes),
            "bitvector_delimiters": (
                StaticPartialSums(bitvector_sizes).size_in_bits()
                if bitvector_sizes else 0
            ),
        }
