"""Shared topology-update machinery for the growable Wavelet Trie variants.

Both the append-only and the fully dynamic Wavelet Trie change the underlying
Patricia trie when a *previously unseen* string arrives: exactly one node is
split, a new internal node with a constant bitvector is created via ``Init``
and a new leaf is added (paper Section 4, Figure 3).  Symmetrically, deleting
the last occurrence of a string removes its leaf and merges its parent with
the sibling.

This mixin implements those structural changes once; subclasses only supply
``_new_constant_bitvector`` (the ``Init`` of their bitvector type).  It also
hosts the shared bulk ``Append`` path (:meth:`_extend_batched`): between
topology changes the per-node branching bits are buffered in plain lists and
flushed through each bitvector's bulk ``extend``, so a batch of appends pays
one trie descent per *distinct* key (per topology epoch) instead of one per
element, and the node bitvectors grow word-at-a-time instead of bit-at-a-time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.bits.bitstring import Bits
from repro.core.node import WaveletTrieNode
from repro.exceptions import BinarizationError

__all__ = ["GrowableTopologyMixin"]


class GrowableTopologyMixin:
    """Patricia-trie split/merge operations shared by the dynamic variants."""

    # Subclasses provide _root, _size and this factory.
    def _new_constant_bitvector(self, bit: int, length: int):
        """``Init(b, n)`` for the bitvector type of this variant."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _ensure_key(self, key: Bits) -> bool:
        """Make sure ``key`` has a root-to-leaf path, splitting a node if needed.

        Returns True if the topology changed (the key was new).  Must be
        called *before* the per-node bit updates of the enclosing
        insert/append, so that the new constant bitvector is initialised with
        the sequence length prior to the update (paper Figure 3).
        """
        if self._root is None:
            self._root = WaveletTrieNode(label=key)
            return True
        node = self._root
        depth = 0
        while True:
            label = node.label
            remaining = key.suffix_from(depth)
            lcp = remaining.lcp_length(label)
            if node.is_leaf:
                if lcp == len(label) and lcp == len(remaining):
                    return False  # key already stored
                if lcp == len(label) or lcp == len(remaining):
                    raise BinarizationError(
                        "inserting this value would violate prefix-freeness"
                    )
                self._split_node(node, lcp, remaining)
                return True
            if lcp == len(label):
                if lcp == len(remaining):
                    raise BinarizationError(
                        "inserting this value would violate prefix-freeness"
                    )
                depth += len(label)
                bit = key[depth]
                depth += 1
                node = node.children[bit]
                continue
            if lcp == len(remaining):
                raise BinarizationError(
                    "inserting this value would violate prefix-freeness"
                )
            self._split_node(node, lcp, remaining)
            return True

    def _split_node(self, node: WaveletTrieNode, lcp: int, remaining: Bits) -> WaveletTrieNode:
        """Split ``node`` at label offset ``lcp``; add a new leaf for ``remaining``.

        The new internal node receives a constant bitvector of the length of
        the split node's subsequence (``Init``), exactly as in Figure 3 of the
        paper.  Returns the new internal node.
        """
        old_bit = node.label[lcp]
        new_bit = remaining[lcp]
        count = node.sequence_length(self._size)
        new_internal = WaveletTrieNode(
            label=node.label.prefix(lcp),
            bitvector=self._new_constant_bitvector(old_bit, count),
        )
        parent = node.parent
        parent_bit = node.parent_bit
        node.label = node.label.suffix_from(lcp + 1)
        new_leaf = WaveletTrieNode(label=remaining.suffix_from(lcp + 1))
        new_internal.attach(old_bit, node)
        new_internal.attach(new_bit, new_leaf)
        if parent is None:
            self._root = new_internal
            new_internal.parent = None
            new_internal.parent_bit = 0
        else:
            parent.attach(parent_bit, new_internal)
        return new_internal

    # ------------------------------------------------------------------
    def _remove_leaf_if_last(self, parent: WaveletTrieNode, leaf_bit: int) -> bool:
        """After a delete: drop the leaf and merge if it held the last occurrence.

        ``parent`` is the leaf's parent and ``leaf_bit`` its branching bit.
        Returns True if the topology changed.
        """
        if parent.bitvector.count(leaf_bit) > 0:
            return False
        sibling = parent.children[1 - leaf_bit]
        sibling.label = parent.label.appended(1 - leaf_bit) + sibling.label
        grandparent = parent.parent
        if grandparent is None:
            self._root = sibling
            sibling.parent = None
            sibling.parent_bit = 0
        else:
            grandparent.attach(parent.parent_bit, sibling)
        return True

    def _prune_empty_child(self, parent: WaveletTrieNode, bit: int) -> bool:
        """After a batch delete: drop ``parent``'s ``bit`` subtree if it emptied.

        The bulk-delete generalisation of :meth:`_remove_leaf_if_last`: the
        emptied child may be a whole internal subtree, and ``parent`` itself
        may sit inside a larger subtree that another prune candidate removes.
        A parent whose own subsequence emptied (``len(bitvector) == 0``) is
        skipped -- the invariant ``len(child bitvector) == parent count``
        guarantees an ancestor candidate covers it -- so prune candidates can
        be processed in any order.  Returns True if the topology changed.
        """
        if parent.bitvector is None or len(parent.bitvector) == 0:
            return False
        return self._remove_leaf_if_last(parent, bit)

    # ------------------------------------------------------------------
    def _extend_batched(self, values) -> None:
        """Bulk ``Append`` of ``values`` (paper Append, batch-amortised).

        Per-node branching bits are buffered and flushed through the
        bitvectors' bulk ``extend`` whenever the Patricia topology is about
        to change (a previously unseen key needs a split, which must observe
        up-to-date bitvector counts) and once at the end.  Root-to-leaf
        paths are cached per distinct binarised key and invalidated on every
        topology change, so n appends of d distinct values cost O(d) trie
        descents per topology epoch plus O(1) list appends per node level.
        """
        key_cache: Dict[Any, Bits] = {}
        paths: Dict[Bits, List[Tuple[WaveletTrieNode, int]]] = {}
        buffers: Dict[int, Tuple[WaveletTrieNode, List[int]]] = {}
        pending = 0

        def flush() -> None:
            nonlocal pending
            for node, bits in buffers.values():
                node.bitvector.extend(bits)
            buffers.clear()
            self._size += pending
            pending = 0

        for value in values:
            try:
                key = key_cache.get(value)
            except TypeError:  # unhashable value: encode without caching
                key = None
            if key is None:
                key = self._codec.to_bits(value)
                try:
                    key_cache[value] = key
                except TypeError:
                    pass
            path = paths.get(key)
            if path is None:
                located = self._path_of(key) if self._root is not None else None
                if located is not None:
                    path = located[1]  # the (node, branching_bit) ancestors
                else:
                    # Topology will change: flush so the split's Init sees
                    # the true subsequence lengths, then drop stale paths.
                    flush()
                    self._ensure_key(key)
                    paths.clear()
                    path = list(self._walk_for_update(key))
                paths[key] = path
            for node, bit in path:
                entry = buffers.get(id(node))
                if entry is None:
                    buffers[id(node)] = (node, [bit])
                else:
                    entry[1].append(bit)
            pending += 1
        flush()

    # ------------------------------------------------------------------
    # Tier protocol (see repro.core.tiers)
    # ------------------------------------------------------------------
    @property
    def tier_state(self) -> str:
        """Always ``"mutable"``: growable tries accept updates."""
        return "mutable"

    def freeze_step(self, budget: int = 64) -> bool:
        """Advance a budgeted freeze of the current content; True when done.

        The first call snapshots the content into a cached
        :class:`~repro.core.tiers.TrieFreezer`; each call performs up to
        ``budget`` block-sized units of work.  Mutating the trie mid-freeze
        raises on the next step.  Collect the static result (and reset the
        freeze state) with :meth:`finish_freeze`.
        """
        from repro.core.tiers import TrieFreezer

        freezer = getattr(self, "_tier_freezer", None)
        if freezer is None:
            freezer = TrieFreezer(self)
            self._tier_freezer = freezer
        if not freezer.done:
            freezer.step(budget)
        return freezer.done

    def finish_freeze(self):
        """Drain any in-flight freeze (starting one if needed) and return
        the static RRR snapshot; resets the budgeted-freeze state."""
        from repro.core.tiers import TrieFreezer

        freezer = getattr(self, "_tier_freezer", None)
        if freezer is None:
            freezer = TrieFreezer(self)
        self._tier_freezer = None
        return freezer.finish()

    def to_succinct(self):
        """Succinct snapshot of the current content (freeze, then flatten)."""
        return self.finish_freeze().to_succinct()

    # ------------------------------------------------------------------
    def _walk_for_update(self, key: Bits):
        """Iterate ``(node, branching_bit)`` over the internal nodes of ``key``'s path.

        Used by the bit-update phase of append/insert after ``_ensure_key``.
        """
        node = self._root
        depth = 0
        while not node.is_leaf:
            bit = key[depth + len(node.label)]
            yield node, bit
            depth += len(node.label) + 1
            node = node.children[bit]
