"""Shared query machinery of every Wavelet Trie variant.

The three variants (static, append-only, fully dynamic) differ only in the
bitvector implementation stored at internal nodes and in which update
operations they allow; the query algorithms of Lemmas 3.2 and 3.3 are common
and implemented once here, on top of the node interface of
:class:`~repro.core.node.WaveletTrieNode`.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.bits.bitstring import Bits
from repro.bitvector.base import normalize_batch, validate_select_indexes
from repro.core.interface import (
    IndexedStringSequence,
    check_select_prefix_index,
    validate_select_prefix_indexes,
)
from repro.core.node import WaveletTrieNode
from repro.core.range_queries import RangeQueryMixin
from repro.exceptions import OutOfBoundsError, ValueNotFoundError
from repro.tries.binarize import StringCodec, default_codec

__all__ = ["WaveletTrieBase"]


class WaveletTrieBase(RangeQueryMixin, IndexedStringSequence):
    """Query implementation shared by all Wavelet Trie variants."""

    def __init__(self, codec: Optional[StringCodec] = None) -> None:
        self._codec = codec or default_codec()
        self._root: Optional[WaveletTrieNode] = None
        self._size = 0

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def codec(self) -> StringCodec:
        """The binarisation codec in use."""
        return self._codec

    @property
    def root(self) -> Optional[WaveletTrieNode]:
        """The root node (None for the empty sequence)."""
        return self._root

    def is_empty(self) -> bool:
        """True if the sequence has no elements."""
        return self._size == 0

    def nodes(self) -> Iterator[WaveletTrieNode]:
        """All trie nodes in preorder (children visited 0 then 1)."""
        if self._root is None:
            return
        stack: List[WaveletTrieNode] = [self._root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                right = node.children[1]
                left = node.children[0]
                if right is not None:
                    stack.append(right)
                if left is not None:
                    stack.append(left)

    def node_count(self) -> int:
        """Number of trie nodes."""
        return sum(1 for _ in self.nodes())

    def distinct_count(self) -> int:
        """|Sset|: number of distinct values (= number of leaves)."""
        return sum(1 for node in self.nodes() if node.is_leaf)

    def distinct_values(self) -> List[Any]:
        """The distinct values, in trie (lexicographic) order."""
        return [value for value, _ in self.distinct_in_range(0, self._size)] \
            if self._size else []

    # ------------------------------------------------------------------
    # Public queries (decode / encode through the codec)
    # ------------------------------------------------------------------
    def access(self, pos: int) -> Any:
        """The element at position ``pos`` (paper Access)."""
        return self._codec.from_bits(self.access_bits(pos))

    def rank(self, value: Any, pos: int) -> int:
        """Occurrences of ``value`` in the first ``pos`` positions (paper Rank)."""
        return self.rank_bits(self._codec.to_bits(value), pos)

    def select(self, value: Any, idx: int) -> int:
        """Position of the ``idx``-th occurrence of ``value`` (paper Select)."""
        return self.select_bits(self._codec.to_bits(value), idx)

    def rank_prefix(self, prefix: Any, pos: int) -> int:
        """Elements with ``prefix`` in the first ``pos`` positions (RankPrefix)."""
        return self.rank_prefix_bits(self._codec.prefix_to_bits(prefix), pos)

    def select_prefix(self, prefix: Any, idx: int) -> int:
        """Position of the ``idx``-th element with ``prefix`` (SelectPrefix)."""
        return self.select_prefix_bits(
            self._codec.prefix_to_bits(prefix), idx, label=prefix
        )

    # ------------------------------------------------------------------
    # Batch queries (amortise the trie descent and codec work per node)
    # ------------------------------------------------------------------
    def access_many(self, positions) -> List[Any]:
        """Elements at each of ``positions`` (batched paper Access).

        One traversal of the touched trie nodes: positions are partitioned by
        their accessed bit at every internal node and mapped down with the
        bitvector's batch ``access_many``/``rank_many``, and each leaf value
        is decoded once for its whole group -- amortised, one bitvector batch
        pass per touched node instead of one full root-to-leaf walk (and one
        decode) per queried position.
        """
        if not isinstance(positions, (list, tuple)):
            positions = list(positions)
        if not positions:
            return []
        for pos in positions:
            if not 0 <= pos < self._size:
                raise OutOfBoundsError(
                    f"position {pos} out of range for length {self._size}"
                )
        results: List[Any] = [None] * len(positions)
        stack = [(self._root, Bits.empty(), list(enumerate(positions)))]
        while stack:
            node, prefix, items = stack.pop()
            current = prefix + node.label
            if node.is_leaf:
                value = self._codec.from_bits(current)
                for index, _ in items:
                    results[index] = value
                continue
            vector = node.bitvector
            bits = vector.access_many([pos for _, pos in items])
            groups: List[List[Tuple[int, int]]] = [[], []]
            for item, bit in zip(items, bits):
                groups[bit].append(item)
            for bit in (0, 1):
                group = groups[bit]
                if not group:
                    continue
                ranks = vector.rank_many(bit, [pos for _, pos in group])
                stack.append(
                    (
                        node.children[bit],
                        current.appended(bit),
                        [(index, rank) for (index, _), rank in zip(group, ranks)],
                    )
                )
        return results

    def rank_many(self, value: Any, positions) -> List[int]:
        """``rank(value, pos)`` for each position (batched paper Rank).

        The value is binarised once and the trie descended once; at every
        internal node the whole position vector is mapped through the
        bitvector's batch ``rank_many`` -- amortised O(|s| + h_s (D + q))
        where D is the per-node batch-pass cost, against q full walks.
        """
        key = self._codec.to_bits(value)
        if not isinstance(positions, (list, tuple)):
            positions = list(positions)
        for pos in positions:
            self._check_rank_pos(pos)
        if self._root is None or not positions:
            return [0] * len(positions)
        node = self._root
        depth = 0
        current: List[int] = list(positions)
        while True:
            label = node.label
            remaining = key.suffix_from(depth)
            if node.is_leaf:
                return current if remaining == label else [0] * len(current)
            if not remaining.startswith(label) or len(remaining) == len(label):
                return [0] * len(current)
            bit = key[depth + len(label)]
            current = node.bitvector.rank_many(bit, current)
            depth += len(label) + 1
            node = node.children[bit]

    def select_many(self, value: Any, indexes) -> List[int]:
        """``select(value, idx)`` for each index (batched paper Select).

        The value is binarised once, its root-to-leaf path located once, and
        the path unwound with each node bitvector's batched ``select_many``
        -- one shared directory/runs pass per node -- so q queries cost
        amortised O(|s| + h_s (D + q log q)) instead of q full O(|s| +
        h_s log n) walks.  Results come back in input order; the indexes
        need not be sorted.
        """
        return self.select_many_bits(self._codec.to_bits(value), indexes)

    def select_many_bits(self, key: Bits, indexes) -> List[int]:
        """Batched Select of a binarised value (see :meth:`select_many`)."""
        indexes = normalize_batch(indexes)
        if not len(indexes):
            return []  # an empty batch never raises, like the default loop
        path = self._path_of(key)
        if path is None:
            raise ValueNotFoundError(
                f"value {key!r} does not occur in the sequence"
            )
        leaf, ancestors = path
        current = validate_select_indexes(
            indexes, leaf.sequence_length(self._size), repr(key)
        )
        for node, bit in reversed(ancestors):
            current = node.bitvector.select_many(bit, current)
        return current

    def rank_prefix_many(self, prefix: Any, positions) -> List[int]:
        """``rank_prefix(prefix, pos)`` for each position (batched RankPrefix).

        The prefix is binarised once and its node located with one shared
        root-to-prefix-node walk; at every internal node on the way the whole
        position vector is mapped through the bitvector's batch ``rank_many``
        -- amortised O(|p| + depth_p (D + q)) where D is the per-node batch
        pass, against q independent O(|p| + depth_p log n) descents.
        """
        return self.rank_prefix_many_bits(
            self._codec.prefix_to_bits(prefix), positions
        )

    def rank_prefix_many_bits(self, prefix: Bits, positions) -> List[int]:
        """Batched RankPrefix of a binarised prefix (see :meth:`rank_prefix_many`)."""
        positions = normalize_batch(positions)
        for pos in positions:
            self._check_rank_pos(pos)
        if self._root is None or not len(positions):
            return [0] * len(positions)
        node = self._root
        remaining = prefix
        current: List[int] = [int(pos) for pos in positions]
        while True:
            label = node.label
            lcp = remaining.lcp_length(label)
            if lcp == len(remaining):
                return current
            if lcp < len(label) or node.is_leaf:
                return [0] * len(current)
            bit = remaining[len(label)]
            current = node.bitvector.rank_many(bit, current)
            remaining = remaining.suffix_from(len(label) + 1)
            node = node.children[bit]

    def select_prefix_many(self, prefix: Any, indexes) -> List[int]:
        """``select_prefix(prefix, idx)`` for each index (batched SelectPrefix).

        The prefix node is located once and its root path unwound with each
        node bitvector's batched ``select_many`` (one shared directory/runs
        pass per node), so q queries cost amortised O(|p| + depth_p (D +
        q log q)) instead of q full SelectPrefix walks.  Results come back in
        input order; the indexes need not be sorted.
        """
        return self.select_prefix_many_bits(
            self._codec.prefix_to_bits(prefix), indexes, label=prefix
        )

    def select_prefix_many_bits(
        self, prefix: Bits, indexes, label: Any = None
    ) -> List[int]:
        """Batched SelectPrefix of a binarised prefix (see :meth:`select_prefix_many`)."""
        indexes = normalize_batch(indexes)
        if not len(indexes):
            return []  # an empty batch never raises, like the default loop
        located = self._prefix_node(prefix)
        if located is None:
            raise ValueNotFoundError(
                f"no element has prefix {(prefix if label is None else label)!r}"
            )
        node, ancestors = located
        current = validate_select_prefix_indexes(
            indexes,
            node.sequence_length(self._size),
            prefix if label is None else label,
        )
        for ancestor, bit in reversed(ancestors):
            current = ancestor.bitvector.select_many(bit, current)
        return list(current)

    # ------------------------------------------------------------------
    # Bit-level queries (Lemmas 3.2 / 3.3)
    # ------------------------------------------------------------------
    def access_bits(self, pos: int) -> Bits:
        """Access, returning the binarised value."""
        if not 0 <= pos < self._size:
            raise OutOfBoundsError(
                f"position {pos} out of range for length {self._size}"
            )
        node = self._root
        out = node.label
        while not node.is_leaf:
            bit = node.bitvector.access(pos)
            pos = node.bitvector.rank(bit, pos)
            node = node.children[bit]
            out = out.appended(bit) + node.label
        return out

    def rank_bits(self, key: Bits, pos: int) -> int:
        """Rank of a binarised value; 0 when the value does not occur."""
        self._check_rank_pos(pos)
        if self._root is None or pos == 0:
            return 0
        node = self._root
        depth = 0
        while True:
            label = node.label
            remaining = key.suffix_from(depth)
            if node.is_leaf:
                return pos if remaining == label else 0
            if not remaining.startswith(label) or len(remaining) == len(label):
                return 0
            bit = key[depth + len(label)]
            pos = node.bitvector.rank(bit, pos)
            if pos == 0:
                return 0
            depth += len(label) + 1
            node = node.children[bit]

    def select_bits(self, key: Bits, idx: int) -> int:
        """Select of a binarised value; raises when there are too few occurrences."""
        if idx < 0:
            raise OutOfBoundsError("select index must be non-negative")
        path = self._path_of(key)
        if path is None:
            raise ValueNotFoundError(
                f"value {key!r} does not occur in the sequence"
            )
        leaf, ancestors = path
        available = leaf.sequence_length(self._size)
        if idx >= available:
            raise OutOfBoundsError(
                f"select index {idx} out of range: only {available} occurrences"
            )
        for node, bit in reversed(ancestors):
            idx = node.bitvector.select(bit, idx)
        return idx

    def rank_prefix_bits(self, prefix: Bits, pos: int) -> int:
        """RankPrefix of a binarised prefix (Lemma 3.3)."""
        self._check_rank_pos(pos)
        if self._root is None or pos == 0:
            return 0
        node = self._root
        remaining = prefix
        while True:
            label = node.label
            lcp = remaining.lcp_length(label)
            if lcp == len(remaining):
                return pos
            if lcp < len(label) or node.is_leaf:
                return 0
            bit = remaining[len(label)]
            pos = node.bitvector.rank(bit, pos)
            if pos == 0:
                return 0
            remaining = remaining.suffix_from(len(label) + 1)
            node = node.children[bit]

    def select_prefix_bits(self, prefix: Bits, idx: int, label: Any = None) -> int:
        """SelectPrefix of a binarised prefix (Lemma 3.3).

        Out-of-range indexes raise the canonical error of
        :func:`~repro.core.interface.check_select_prefix_index`, shared with
        the baselines.
        """
        located = self._prefix_node(prefix)
        if located is None:
            raise ValueNotFoundError(
                f"no element has prefix {(prefix if label is None else label)!r}"
            )
        node, ancestors = located
        available = node.sequence_length(self._size)
        check_select_prefix_index(
            prefix if label is None else label, idx, available
        )
        for ancestor, bit in reversed(ancestors):
            idx = ancestor.bitvector.select(bit, idx)
        return idx

    # ------------------------------------------------------------------
    # Path helpers
    # ------------------------------------------------------------------
    def _path_of(
        self, key: Bits
    ) -> Optional[Tuple[WaveletTrieNode, List[Tuple[WaveletTrieNode, int]]]]:
        """Root-to-leaf path of ``key``.

        Returns ``(leaf, [(internal_node, branching_bit), ...])`` or None when
        the key is not stored.
        """
        if self._root is None:
            return None
        node = self._root
        depth = 0
        ancestors: List[Tuple[WaveletTrieNode, int]] = []
        while True:
            label = node.label
            remaining = key.suffix_from(depth)
            if node.is_leaf:
                if remaining != label:
                    return None
                return node, ancestors
            if not remaining.startswith(label) or len(remaining) == len(label):
                return None
            bit = key[depth + len(label)]
            ancestors.append((node, bit))
            depth += len(label) + 1
            node = node.children[bit]

    def _prefix_node(
        self, prefix: Bits
    ) -> Optional[Tuple[WaveletTrieNode, List[Tuple[WaveletTrieNode, int]]]]:
        """The node ``n_p`` whose subtree holds exactly the keys with ``prefix``."""
        if self._root is None:
            return None
        node = self._root
        remaining = prefix
        ancestors: List[Tuple[WaveletTrieNode, int]] = []
        while True:
            label = node.label
            lcp = remaining.lcp_length(label)
            if lcp == len(remaining):
                return node, ancestors
            if lcp < len(label) or node.is_leaf:
                return None
            bit = remaining[len(label)]
            ancestors.append((node, bit))
            remaining = remaining.suffix_from(len(label) + 1)
            node = node.children[bit]

    def height_of(self, value: Any) -> int:
        """``h_s``: number of internal nodes on the path of ``value``."""
        path = self._path_of(self._codec.to_bits(value))
        if path is None:
            raise ValueNotFoundError(f"value {value!r} does not occur in the sequence")
        _, ancestors = path
        return len(ancestors)

    def average_height(self) -> float:
        """``h̃`` (Definition 3.4): mean of ``h_s`` over the whole sequence.

        Equivalently, the total bitvector length divided by ``n``.
        """
        if self._size == 0:
            return 0.0
        total = sum(
            len(node.bitvector) for node in self.nodes() if not node.is_leaf
        )
        return total / self._size

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Measured size: labels + node bitvectors + topology pointers."""
        total = 0
        node_count = 0
        for node in self.nodes():
            node_count += 1
            total += len(node.label)
            if node.bitvector is not None:
                total += node.bitvector.size_in_bits()
        return total + node_count * 4 * 64

    def bitvector_bits(self) -> int:
        """Total measured size of the node bitvectors (tracks ``n H0(S)``)."""
        return sum(
            node.bitvector.size_in_bits()
            for node in self.nodes()
            if node.bitvector is not None
        )

    def label_bits(self) -> int:
        """Total label length ``|L|`` over all nodes."""
        return sum(len(node.label) for node in self.nodes())

    # ------------------------------------------------------------------
    def _check_rank_pos(self, pos: int) -> None:
        if not 0 <= pos <= self._size:
            raise OutOfBoundsError(
                f"rank position {pos} out of range for length {self._size}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n={self._size}, "
            f"distinct={self.distinct_count()})"
        )
