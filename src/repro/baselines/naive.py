"""Uncompressed reference implementation of an indexed sequence of strings.

Every operation is implemented by scanning an explicit Python list.  The class
is deliberately simple -- it is the *oracle* the property-based tests compare
the Wavelet Trie (and the other baselines) against, and the uncompressed
yardstick in the space benchmarks.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, List, Optional, Tuple

from repro.core.interface import IndexedStringSequence, check_select_prefix_index
from repro.exceptions import OutOfBoundsError, ValueNotFoundError

__all__ = ["NaiveIndexedSequence"]


class NaiveIndexedSequence(IndexedStringSequence):
    """Plain list of strings with linear-scan query implementations."""

    def __init__(self, values: Iterable[Any] = ()) -> None:
        self._values: List[Any] = list(values)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._values)

    def access(self, pos: int) -> Any:
        self._check_pos(pos)
        return self._values[pos]

    def rank(self, value: Any, pos: int) -> int:
        self._check_rank_pos(pos)
        return sum(1 for item in self._values[:pos] if item == value)

    def select(self, value: Any, idx: int) -> int:
        seen = 0
        for position, item in enumerate(self._values):
            if item == value:
                if seen == idx:
                    return position
                seen += 1
        raise OutOfBoundsError(
            f"select({value!r}, {idx}) out of range: only {seen} occurrences"
        )

    def rank_prefix(self, prefix: Any, pos: int) -> int:
        self._check_rank_pos(pos)
        return sum(1 for item in self._values[:pos] if item.startswith(prefix))

    def select_prefix(self, prefix: Any, idx: int) -> int:
        seen = 0
        for position, item in enumerate(self._values):
            if item.startswith(prefix):
                if seen == idx:
                    return position
                seen += 1
        # The scan exhausted, so ``seen`` is the total match count and
        # ``idx`` is out of range (negative indexes never match ``seen``):
        # raise the canonical error.
        check_select_prefix_index(prefix, idx, seen)
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def append(self, value: Any) -> None:
        self._values.append(value)

    def insert(self, value: Any, pos: int) -> None:
        if not 0 <= pos <= len(self._values):
            raise OutOfBoundsError(f"insert position {pos} out of range")
        self._values.insert(pos, value)

    def delete(self, pos: int) -> Any:
        self._check_pos(pos)
        return self._values.pop(pos)

    # ------------------------------------------------------------------
    # Range analytics (mirrors RangeQueryMixin for cross-checking)
    # ------------------------------------------------------------------
    def iter_range(self, start: int, stop: int):
        self._check_range(start, stop)
        return iter(self._values[start:stop])

    def distinct_in_range(
        self, start: int, stop: int, prefix: Optional[Any] = None
    ) -> List[Tuple[Any, int]]:
        self._check_range(start, stop)
        window = self._values[start:stop]
        if prefix is not None:
            window = [item for item in window if item.startswith(prefix)]
        counts = Counter(window)
        return sorted(counts.items())

    def range_majority(
        self, start: int, stop: int, prefix: Optional[Any] = None
    ) -> Optional[Tuple[Any, int]]:
        self._check_range(start, stop)
        window = self._values[start:stop]
        if prefix is not None:
            window = [item for item in window if item.startswith(prefix)]
        if not window:
            return None
        value, count = Counter(window).most_common(1)[0]
        return (value, count) if count > len(window) / 2 else None

    def frequent_in_range(
        self, start: int, stop: int, threshold: int, prefix: Optional[Any] = None
    ) -> List[Tuple[Any, int]]:
        return [
            (value, count)
            for value, count in self.distinct_in_range(start, stop, prefix)
            if count >= threshold
        ]

    def top_k_in_range(
        self, start: int, stop: int, k: int, prefix: Optional[Any] = None
    ) -> List[Tuple[Any, int]]:
        counts = self.distinct_in_range(start, stop, prefix)
        return sorted(counts, key=lambda item: (-item[1], item[0]))[:k]

    def range_count(self, value: Any, start: int, stop: int) -> int:
        self._check_range(start, stop)
        return sum(1 for item in self._values[start:stop] if item == value)

    def range_count_prefix(self, prefix: Any, start: int, stop: int) -> int:
        self._check_range(start, stop)
        return sum(1 for item in self._values[start:stop] if item.startswith(prefix))

    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Space of the explicit representation: characters + one pointer each."""
        payload = sum(len(str(item).encode("utf-8")) * 8 for item in self._values)
        return payload + len(self._values) * 64

    # ------------------------------------------------------------------
    def _check_pos(self, pos: int) -> None:
        if not 0 <= pos < len(self._values):
            raise OutOfBoundsError(
                f"position {pos} out of range for length {len(self._values)}"
            )

    def _check_rank_pos(self, pos: int) -> None:
        if not 0 <= pos <= len(self._values):
            raise OutOfBoundsError(
                f"position {pos} out of range for length {len(self._values)}"
            )

    def _check_range(self, start: int, stop: int) -> None:
        if not (0 <= start <= stop <= len(self._values)):
            raise OutOfBoundsError(f"range [{start}, {stop}) invalid")
