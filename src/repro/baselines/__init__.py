"""Related-work baselines for indexed sequences of strings.

The paper's introduction (and "Related work") lists the three ways indexed
string sequences are stored today; each is implemented here so the benchmark
harness can compare them with the Wavelet Trie on the same workloads:

1. :class:`~repro.baselines.dict_wavelet.DictWaveletSequence` -- map the
   strings to integers through a dictionary and index the integer sequence
   with a Wavelet Tree (static alphabet, no SelectPrefix);
2. :class:`~repro.baselines.text_collection.TextCollectionSequence` -- the
   "Dynamic Text Collection" style: concatenate the strings with separators
   and compress the resulting text (character-level entropy only);
3. :class:`~repro.baselines.btree_index.BTreeSequenceIndex` -- the database
   index style: a B-tree over ``(string, position)`` pairs plus an explicit
   copy of the sequence for Access.

:class:`~repro.baselines.naive.NaiveIndexedSequence` is the uncompressed
oracle used by the tests to cross-check every other implementation.
"""

from repro.baselines.btree_index import BTreeSequenceIndex
from repro.baselines.dict_wavelet import DictWaveletSequence
from repro.baselines.naive import NaiveIndexedSequence
from repro.baselines.text_collection import TextCollectionSequence

__all__ = [
    "BTreeSequenceIndex",
    "DictWaveletSequence",
    "NaiveIndexedSequence",
    "TextCollectionSequence",
]
