"""Baseline 3: a B-tree index over ``(string, position)`` pairs.

This is how databases traditionally index a column (paper Section 1,
"Related work", approach (3)): the concatenation ``(s_i, i)`` is stored in a
B-tree (here a textbook in-memory B-tree built from scratch), which supports
``Select``/``SelectPrefix`` by range scans; ``Access`` needs a separate
explicit copy of the sequence, and ``Rank`` degenerates to counting within a
key range scan.  Space is far from the entropy bound -- every string is
stored again in the index -- which is exactly the gap the Wavelet Trie closes.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Tuple

from repro.core.interface import IndexedStringSequence, check_select_prefix_index
from repro.exceptions import OutOfBoundsError

__all__ = ["BTreeSequenceIndex", "BTree"]


class _BTreeNode:
    __slots__ = ("keys", "children")

    def __init__(self, keys=None, children=None) -> None:
        self.keys: List[Tuple] = keys if keys is not None else []
        self.children: List["_BTreeNode"] = children if children is not None else []

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BTree:
    """A classic in-memory B-tree storing orderable keys (no duplicates).

    Minimum degree ``t``: every node except the root holds between ``t - 1``
    and ``2t - 1`` keys.  Supports insertion, membership, deletion-free usage
    and ordered range scans -- everything the sequence-index baseline needs.
    """

    def __init__(self, min_degree: int = 16) -> None:
        if min_degree < 2:
            raise ValueError("min_degree must be at least 2")
        self._t = min_degree
        self._root = _BTreeNode()
        self._count = 0
        self._height = 1

    def __len__(self) -> int:
        return self._count

    @property
    def height(self) -> int:
        """Number of levels (1 for a single leaf root)."""
        return self._height

    # ------------------------------------------------------------------
    def insert(self, key) -> None:
        """Insert ``key`` (assumed not already present)."""
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = _BTreeNode(children=[root])
            self._split_child(new_root, 0)
            self._root = new_root
            self._height += 1
            root = new_root
        self._insert_non_full(root, key)
        self._count += 1

    def _split_child(self, parent: _BTreeNode, index: int) -> None:
        t = self._t
        child = parent.children[index]
        sibling = _BTreeNode(
            keys=child.keys[t:],
            children=child.children[t:] if not child.is_leaf else [],
        )
        middle = child.keys[t - 1]
        child.keys = child.keys[: t - 1]
        if not child.is_leaf:
            child.children = child.children[:t]
        parent.keys.insert(index, middle)
        parent.children.insert(index + 1, sibling)

    def _insert_non_full(self, node: _BTreeNode, key) -> None:
        while True:
            if node.is_leaf:
                position = self._lower_bound(node.keys, key)
                node.keys.insert(position, key)
                return
            position = self._lower_bound(node.keys, key)
            child = node.children[position]
            if len(child.keys) == 2 * self._t - 1:
                self._split_child(node, position)
                if key > node.keys[position]:
                    position += 1
                child = node.children[position]
            node = child

    @staticmethod
    def _lower_bound(keys: List, key) -> int:
        low, high = 0, len(keys)
        while low < high:
            mid = (low + high) // 2
            if keys[mid] < key:
                low = mid + 1
            else:
                high = mid
        return low

    # ------------------------------------------------------------------
    def __contains__(self, key) -> bool:
        node = self._root
        while True:
            position = self._lower_bound(node.keys, key)
            if position < len(node.keys) and node.keys[position] == key:
                return True
            if node.is_leaf:
                return False
            node = node.children[position]

    def iterate_from(self, key) -> Iterator:
        """Yield all stored keys ``>= key`` in increasing order."""
        stack: List[Tuple[_BTreeNode, int]] = []
        node = self._root
        while True:
            position = self._lower_bound(node.keys, key)
            stack.append((node, position))
            if node.is_leaf:
                break
            node = node.children[position]
        while stack:
            node, position = stack.pop()
            if node.is_leaf:
                for index in range(position, len(node.keys)):
                    yield node.keys[index]
                continue
            if position < len(node.keys):
                yield node.keys[position]
                stack.append((node, position + 1))
                # Descend into the child to the right of the yielded key.
                child = node.children[position + 1]
                while True:
                    stack.append((child, 0))
                    if child.is_leaf:
                        break
                    child = child.children[0]

    def node_count(self) -> int:
        """Total number of B-tree nodes."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count


class BTreeSequenceIndex(IndexedStringSequence):
    """Sequence of strings indexed by a B-tree of ``(string, position)`` pairs."""

    def __init__(self, values: Iterable[str] = (), min_degree: int = 16) -> None:
        self._values: List[str] = []
        self._tree = BTree(min_degree=min_degree)
        for value in values:
            self.append(value)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._values)

    def access(self, pos: int) -> str:
        """Access needs the explicit copy of the sequence (the index cannot serve it)."""
        if not 0 <= pos < len(self._values):
            raise OutOfBoundsError(f"position {pos} out of range")
        return self._values[pos]

    def rank(self, value: str, pos: int) -> int:
        """Counting scan over the index entries of ``value`` (no O(1) rank)."""
        if not 0 <= pos <= len(self._values):
            raise OutOfBoundsError(f"position {pos} out of range")
        count = 0
        for key_value, key_pos in self._tree.iterate_from((value, -1)):
            if key_value != value:
                break
            if key_pos < pos:
                count += 1
        return count

    def select(self, value: str, idx: int) -> int:
        seen = 0
        for key_value, key_pos in self._tree.iterate_from((value, -1)):
            if key_value != value:
                break
            if seen == idx:
                return key_pos
            seen += 1
        raise OutOfBoundsError(
            f"select({value!r}, {idx}) out of range: only {seen} occurrences"
        )

    def rank_prefix(self, prefix: str, pos: int) -> int:
        count = 0
        for key_value, key_pos in self._tree.iterate_from((prefix, -1)):
            if not key_value.startswith(prefix):
                break
            if key_pos < pos:
                count += 1
        return count

    def select_prefix(self, prefix: str, idx: int) -> int:
        """Index order is (string, position); the idx-th *positional* match needs a scan."""
        positions: List[int] = []
        for key_value, key_pos in self._tree.iterate_from((prefix, -1)):
            if not key_value.startswith(prefix):
                break
            positions.append(key_pos)
        positions.sort()
        check_select_prefix_index(prefix, idx, len(positions))
        return positions[idx]

    # ------------------------------------------------------------------
    def append(self, value: str) -> None:
        position = len(self._values)
        self._values.append(value)
        self._tree.insert((value, position))

    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Explicit sequence copy + one index entry (string + position) per element."""
        sequence_bits = sum(len(v.encode("utf-8")) * 8 + 64 for v in self._values)
        index_bits = sum(len(v.encode("utf-8")) * 8 + 2 * 64 for v in self._values)
        node_overhead = self._tree.node_count() * 4 * 64
        return sequence_bits + index_bits + node_overhead

    @property
    def tree_height(self) -> int:
        """Height of the underlying B-tree."""
        return self._tree.height
