"""Baseline 1: alphabet mapping + integer Wavelet Tree.

The strings are mapped to integer identifiers through a dictionary and the
resulting integer sequence is indexed with a classic Wavelet Tree.  This is
the approach used implicitly by most Rank/Select sequence literature (paper
Section 1, "Related work", approach (1)) and it has exactly the two
limitations the paper points out:

* the alphabet is frozen at construction time -- appending a string that was
  never seen raises, because the mapping (and the tree shape) cannot change;
* the string structure is lost.  With a *lexicographic* mapping, prefixes map
  to contiguous identifier ranges, so ``RankPrefix`` can still be answered
  through two-dimensional range counting (as the paper notes, citing
  Makinen & Navarro's RangeCount), but ``SelectPrefix`` has no *direct*
  counterpart -- it is emulated here by a binary search over ``RankPrefix``,
  paying an extra O(log n) factor the Wavelet Trie does not.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable, List, Optional

from repro.core.interface import IndexedStringSequence, check_select_prefix_index
from repro.exceptions import (
    InvalidOperationError,
    OutOfBoundsError,
    ValueNotFoundError,
)
from repro.wavelet.wavelet_tree import WaveletTree

__all__ = ["DictWaveletSequence"]


class DictWaveletSequence(IndexedStringSequence):
    """Dictionary-mapped integer sequence indexed by a Wavelet Tree (static alphabet)."""

    def __init__(self, values: Iterable[str] = (), bitvector: str = "rrr") -> None:
        values = list(values)
        # Lexicographic mapping so prefix ranges are contiguous.
        self._alphabet: List[str] = sorted(set(values))
        self._ids = {value: index for index, value in enumerate(self._alphabet)}
        self._tree = WaveletTree(
            [self._ids[value] for value in values],
            alphabet_size=max(1, len(self._alphabet)),
            bitvector=bitvector,
        )
        self._size = len(values)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def alphabet(self) -> List[str]:
        """The frozen, lexicographically sorted alphabet."""
        return list(self._alphabet)

    def _id_of(self, value: str) -> Optional[int]:
        return self._ids.get(value)

    def _prefix_id_range(self, prefix: str) -> tuple:
        """The contiguous identifier range of strings starting with ``prefix``."""
        low = bisect_left(self._alphabet, prefix)
        high = low
        while high < len(self._alphabet) and self._alphabet[high].startswith(prefix):
            high += 1
        return low, high

    # ------------------------------------------------------------------
    def access(self, pos: int) -> str:
        if not 0 <= pos < self._size:
            raise OutOfBoundsError(f"position {pos} out of range")
        return self._alphabet[self._tree.access(pos)]

    def rank(self, value: str, pos: int) -> int:
        if not 0 <= pos <= self._size:
            raise OutOfBoundsError(f"position {pos} out of range")
        symbol = self._id_of(value)
        if symbol is None:
            return 0
        return self._tree.rank(symbol, pos)

    def select(self, value: str, idx: int) -> int:
        symbol = self._id_of(value)
        if symbol is None:
            raise ValueNotFoundError(f"value {value!r} does not occur")
        return self._tree.select(symbol, idx)

    def rank_prefix(self, prefix: str, pos: int) -> int:
        """Supported thanks to the lexicographic mapping: a 2D range count."""
        if not 0 <= pos <= self._size:
            raise OutOfBoundsError(f"position {pos} out of range")
        low, high = self._prefix_id_range(prefix)
        if low >= high:
            return 0
        return self._tree.range_count(0, pos, low, high)

    def select_prefix(self, prefix: str, idx: int) -> int:
        """SelectPrefix by binary search over :meth:`rank_prefix`.

        The mapping has no *direct* SelectPrefix (the paper's Related Work
        point stands): this answers it with O(log n) RankPrefix range counts
        -- a log-factor penalty the Wavelet Trie avoids -- and raises the
        canonical out-of-range error shared with the other baselines.
        """
        total = self.rank_prefix(prefix, self._size)
        check_select_prefix_index(prefix, idx, total)
        low, high = 0, self._size - 1
        while low < high:
            mid = (low + high) // 2
            if self.rank_prefix(prefix, mid + 1) >= idx + 1:
                high = mid
            else:
                low = mid + 1
        return low

    # ------------------------------------------------------------------
    def append(self, value: str) -> None:
        raise InvalidOperationError(
            "the alphabet of a dictionary-mapped Wavelet Tree is fixed at "
            "construction time; appending (possibly unseen) values requires "
            "the Wavelet Trie"
        )

    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Wavelet Tree space plus the explicit dictionary."""
        dictionary = sum(len(value.encode("utf-8")) * 8 + 64 for value in self._alphabet)
        return self._tree.size_in_bits() + dictionary
