"""Baseline 2: concatenate-and-compress ("Dynamic Text Collection" style).

The strings are concatenated with a separator character and the resulting
text is stored in a character-level Huffman-shaped Wavelet Tree, with a
sparse bitvector marking where each string starts.  This is the approach the
paper calls "Dynamic Text Collection" (Makinen & Navarro): it compresses only
to the *character* entropy of the text -- it cannot exploit whole-string
repetitions -- and every sequence operation must reconstruct or scan strings
character by character, so both space and time are worse than the Wavelet
Trie on string-heavy workloads.  That contrast is what the ``RW-BASE``
benchmark measures.
"""

from __future__ import annotations

from typing import Any, Iterable, List

from repro.bitvector.sparse import SparseBitVector
from repro.core.interface import IndexedStringSequence, check_select_prefix_index
from repro.exceptions import OutOfBoundsError
from repro.wavelet.huffman import HuffmanWaveletTree

__all__ = ["TextCollectionSequence"]

_SEPARATOR = "\x00"


class TextCollectionSequence(IndexedStringSequence):
    """Concatenated text + character-level compressed index + start markers."""

    def __init__(self, values: Iterable[str] = ()) -> None:
        values = list(values)
        for value in values:
            if _SEPARATOR in value:
                raise ValueError("values must not contain the NUL separator")
        self._size = len(values)
        text: List[str] = []
        starts: List[int] = []
        offset = 0
        for value in values:
            starts.append(offset)
            text.append(value)
            text.append(_SEPARATOR)
            offset += len(value) + 1
        self._text_length = offset
        self._text_tree = HuffmanWaveletTree("".join(text)) if offset else None
        self._starts = (
            SparseBitVector(max(offset, 1), starts) if values else None
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def _check_rank_pos(self, pos: int) -> None:
        if not 0 <= pos <= self._size:
            raise OutOfBoundsError(f"position {pos} out of range for length {self._size}")

    def _string_at(self, pos: int) -> str:
        start = self._starts.select(1, pos)
        characters: List[str] = []
        offset = start
        while offset < self._text_length:
            char = self._text_tree.access(offset)
            if char == _SEPARATOR:
                break
            characters.append(char)
            offset += 1
        return "".join(characters)

    # ------------------------------------------------------------------
    def access(self, pos: int) -> str:
        """Extract the ``pos``-th string character by character from the text."""
        if not 0 <= pos < self._size:
            raise OutOfBoundsError(f"position {pos} out of range for length {self._size}")
        return self._string_at(pos)

    def rank(self, value: str, pos: int) -> int:
        """Counting scan: extract and compare each of the first ``pos`` strings."""
        self._check_rank_pos(pos)
        return sum(1 for index in range(pos) if self._string_at(index) == value)

    def select(self, value: str, idx: int) -> int:
        seen = 0
        for index in range(self._size):
            if self._string_at(index) == value:
                if seen == idx:
                    return index
                seen += 1
        raise OutOfBoundsError(
            f"select({value!r}, {idx}) out of range: only {seen} occurrences"
        )

    def rank_prefix(self, prefix: str, pos: int) -> int:
        self._check_rank_pos(pos)
        return sum(
            1 for index in range(pos) if self._string_at(index).startswith(prefix)
        )

    def select_prefix(self, prefix: str, idx: int) -> int:
        seen = 0
        for index in range(self._size):
            if self._string_at(index).startswith(prefix):
                if seen == idx:
                    return index
                seen += 1
        # Scan exhausted: ``seen`` is the total match count and ``idx`` is
        # out of range -- raise the canonical error.
        check_select_prefix_index(prefix, idx, seen)
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Character-entropy-compressed text plus the start-marker bitvector."""
        text_bits = self._text_tree.size_in_bits() if self._text_tree else 0
        start_bits = self._starts.size_in_bits() if self._starts else 0
        return text_bits + start_bits
