"""The container file formats: RWT1 logical payloads, RWT2 frozen images.

Layout of an RWT1 stored object (all integers little-endian / LEB128):

====================  =======================================================
field                 content
====================  =======================================================
magic                 4 bytes, ``b"RWT1"``
format version        1 byte, currently ``1``
type tag              varint, see :data:`repro.storage.serializers.TYPE_TAGS`
payload length        varint
payload               the serialised object
checksum              4 bytes, CRC-32 of the payload
====================  =======================================================

The checksum makes truncation and bit rot detectable: :func:`loads` verifies
it before handing the payload to the object reader, rejects any trailing
bytes after the checksum, and raises
:class:`~repro.exceptions.SerializationError` on any mismatch.

:func:`load` and :func:`loads` also accept the RWT2 frozen-image format
(magic ``b"RWT2"``, see :mod:`repro.storage.image`): the first four bytes
select the loader, so callers never need to know which container a file
uses.  RWT1 fully decodes and rebuilds the object (cost linear in its
size); RWT2 memory-maps it with zero-copy views (constant-cost open).

Large RWT1 files are streamed: :func:`save` writes the payload in chunks
and :func:`load` reads into one preallocated buffer while feeding
``zlib.crc32`` incrementally, so neither holds two copies of the payload.
"""

from __future__ import annotations

import os
import zlib
from typing import Any, BinaryIO, Union

from repro.exceptions import SerializationError
from repro.storage.image import IMAGE_MAGIC, loads_image, open_image
from repro.storage.serializers import read_object, write_object
from repro.storage.varint import ByteReader, ByteWriter

__all__ = ["FORMAT_VERSION", "MAGIC", "dumps", "loads", "save", "load"]

MAGIC = b"RWT1"
FORMAT_VERSION = 1

# Chunk size for streamed payload reads/writes (satellite: the running-CRC
# stream keeps load() at one payload copy instead of two).
_CHUNK = 1 << 20


def dumps(obj: Any) -> bytes:
    """Serialise ``obj`` to RWT1 bytes.

    Supported types are the three Wavelet Trie variants,
    :class:`~repro.db.column.CompressedColumn`,
    :class:`~repro.db.table.ColumnStore` and
    :class:`~repro.db.log_store.AccessLogStore`.
    """
    type_tag, payload = write_object(obj)
    writer = ByteWriter()
    writer.write_raw(MAGIC)
    writer.write_u8(FORMAT_VERSION)
    writer.write_uvarint(type_tag)
    writer.write_uvarint(len(payload))
    writer.write_raw(payload)
    writer.write_u32(zlib.crc32(payload) & 0xFFFFFFFF)
    return writer.getvalue()


def loads(data: bytes) -> Any:
    """Rebuild the object stored in ``data`` (either container format)."""
    if bytes(data[: len(IMAGE_MAGIC)]) == IMAGE_MAGIC:
        return loads_image(data)
    reader = ByteReader(data)
    magic = reader.read_raw(len(MAGIC))
    if magic != MAGIC:
        raise SerializationError(
            f"not a wavelet-trie file (bad magic {magic!r}, expected "
            f"{MAGIC!r} or {IMAGE_MAGIC!r})"
        )
    version = reader.read_u8()
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version: found {version}, "
            f"expected {FORMAT_VERSION}"
        )
    type_tag = reader.read_uvarint()
    payload_length = reader.read_uvarint()
    payload = reader.read_raw(payload_length)
    stored_checksum = reader.read_u32()
    trailing = reader.remaining()
    if trailing:
        raise SerializationError(
            f"{trailing} trailing bytes after the checksum "
            "(corrupted or concatenated file?)"
        )
    actual_checksum = zlib.crc32(payload) & 0xFFFFFFFF
    if stored_checksum != actual_checksum:
        raise SerializationError(
            f"checksum mismatch: stored {stored_checksum:#010x}, "
            f"computed {actual_checksum:#010x} (corrupted file?)"
        )
    return read_object(type_tag, payload)


def save(obj: Any, path: Union[str, os.PathLike]) -> int:
    """Serialise ``obj`` to ``path`` as RWT1; returns the bytes written.

    The file is written atomically: the data goes to a temporary sibling file
    which is renamed over the target only after a successful write, so a
    crash cannot leave a half-written index behind.  The payload streams to
    disk in chunks with a running CRC -- no second in-memory copy of the
    serialised bytes is ever built.
    """
    type_tag, payload = write_object(obj)
    header = ByteWriter()
    header.write_raw(MAGIC)
    header.write_u8(FORMAT_VERSION)
    header.write_uvarint(type_tag)
    header.write_uvarint(len(payload))
    path = os.fspath(path)
    temporary = f"{path}.tmp"
    written = 0
    crc = 0
    with open(temporary, "wb") as handle:
        written += handle.write(header.getvalue())
        view = memoryview(payload)
        for start in range(0, len(payload), _CHUNK):
            chunk = view[start : start + _CHUNK]
            crc = zlib.crc32(chunk, crc)
            written += handle.write(chunk)
        written += handle.write((crc & 0xFFFFFFFF).to_bytes(4, "little"))
    os.replace(temporary, path)
    return written


def _read_header_byte(handle: BinaryIO) -> int:
    raw = handle.read(1)
    if not raw:
        raise SerializationError("unexpected end of file in header")
    return raw[0]


def _read_uvarint_stream(handle: BinaryIO) -> int:
    result = 0
    shift = 0
    while True:
        byte = _read_header_byte(handle)
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7
        if shift > 63:
            raise SerializationError("varint too long (corrupted file?)")


def load(path: Union[str, os.PathLike]) -> Any:
    """Load the object stored at ``path`` (either container format).

    The first four bytes select the loader: ``RWT1`` streams the logical
    payload into one preallocated buffer with a running ``zlib.crc32``
    (a single in-memory copy of the payload, however large the file);
    ``RWT2`` memory-maps the frozen image and returns zero-copy views
    (see :func:`repro.storage.image.open_image`).
    """
    with open(path, "rb") as handle:
        magic = handle.read(len(MAGIC))
        if magic != IMAGE_MAGIC:
            return _load_rwt1_stream(handle, magic)
    return open_image(path)


def _load_rwt1_stream(handle: BinaryIO, magic: bytes) -> Any:
    if magic != MAGIC:
        raise SerializationError(
            f"not a wavelet-trie file (bad magic {magic!r}, expected "
            f"{MAGIC!r} or {IMAGE_MAGIC!r})"
        )
    version = _read_header_byte(handle)
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version: found {version}, "
            f"expected {FORMAT_VERSION}"
        )
    type_tag = _read_uvarint_stream(handle)
    payload_length = _read_uvarint_stream(handle)
    # Bound the preallocation by the actual file size so a corrupted length
    # varint fails cleanly instead of attempting a huge allocation.
    available = os.fstat(handle.fileno()).st_size - handle.tell()
    if payload_length > available:
        raise SerializationError(
            f"payload length {payload_length} exceeds the {available} bytes "
            "left in the file (truncated or corrupted?)"
        )
    payload = bytearray(payload_length)
    view = memoryview(payload)
    crc = 0
    filled = 0
    while filled < payload_length:
        chunk = view[filled : min(filled + _CHUNK, payload_length)]
        got = handle.readinto(chunk)
        if not got:
            raise SerializationError(
                f"unexpected end of file: payload truncated at byte {filled} "
                f"of {payload_length}"
            )
        crc = zlib.crc32(chunk[:got], crc)
        filled += got
    stored = handle.read(4)
    if len(stored) != 4:
        raise SerializationError("unexpected end of file: checksum missing")
    stored_checksum = int.from_bytes(stored, "little")
    if handle.read(1):
        raise SerializationError(
            "trailing bytes after the checksum (corrupted or concatenated file?)"
        )
    actual_checksum = crc & 0xFFFFFFFF
    if stored_checksum != actual_checksum:
        raise SerializationError(
            f"checksum mismatch: stored {stored_checksum:#010x}, "
            f"computed {actual_checksum:#010x} (corrupted file?)"
        )
    return read_object(type_tag, payload)
