"""The container file format: header, type tag, checksum.

Layout of a stored object (all integers little-endian / LEB128):

====================  =======================================================
field                 content
====================  =======================================================
magic                 4 bytes, ``b"RWT1"``
format version        1 byte, currently ``1``
type tag              varint, see :data:`repro.storage.serializers.TYPE_TAGS`
payload length        varint
payload               the serialised object
checksum              4 bytes, CRC-32 of the payload
====================  =======================================================

The checksum makes truncation and bit rot detectable: :func:`loads` verifies
it before handing the payload to the object reader and raises
:class:`~repro.exceptions.SerializationError` on any mismatch.
"""

from __future__ import annotations

import os
import zlib
from typing import Any, Union

from repro.exceptions import SerializationError
from repro.storage.serializers import read_object, write_object
from repro.storage.varint import ByteReader, ByteWriter

__all__ = ["FORMAT_VERSION", "MAGIC", "dumps", "loads", "save", "load"]

MAGIC = b"RWT1"
FORMAT_VERSION = 1


def dumps(obj: Any) -> bytes:
    """Serialise ``obj`` to bytes.

    Supported types are the three Wavelet Trie variants,
    :class:`~repro.db.column.CompressedColumn`,
    :class:`~repro.db.table.ColumnStore` and
    :class:`~repro.db.log_store.AccessLogStore`.
    """
    type_tag, payload = write_object(obj)
    writer = ByteWriter()
    writer.write_raw(MAGIC)
    writer.write_u8(FORMAT_VERSION)
    writer.write_uvarint(type_tag)
    writer.write_uvarint(len(payload))
    writer.write_raw(payload)
    writer.write_u32(zlib.crc32(payload) & 0xFFFFFFFF)
    return writer.getvalue()


def loads(data: bytes) -> Any:
    """Rebuild the object stored in ``data`` (inverse of :func:`dumps`)."""
    reader = ByteReader(data)
    magic = reader.read_raw(len(MAGIC))
    if magic != MAGIC:
        raise SerializationError(
            f"not a wavelet-trie file (bad magic {magic!r}, expected {MAGIC!r})"
        )
    version = reader.read_u8()
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {version} (this build reads version {FORMAT_VERSION})"
        )
    type_tag = reader.read_uvarint()
    payload_length = reader.read_uvarint()
    payload = reader.read_raw(payload_length)
    stored_checksum = reader.read_u32()
    reader.expect_end()
    actual_checksum = zlib.crc32(payload) & 0xFFFFFFFF
    if stored_checksum != actual_checksum:
        raise SerializationError(
            f"checksum mismatch: stored {stored_checksum:#010x}, "
            f"computed {actual_checksum:#010x} (corrupted file?)"
        )
    return read_object(type_tag, payload)


def save(obj: Any, path: Union[str, os.PathLike]) -> int:
    """Serialise ``obj`` to ``path``; returns the number of bytes written.

    The file is written atomically: the data goes to a temporary sibling file
    which is renamed over the target only after a successful write, so a
    crash cannot leave a half-written index behind.
    """
    data = dumps(obj)
    path = os.fspath(path)
    temporary = f"{path}.tmp"
    with open(temporary, "wb") as handle:
        handle.write(data)
    os.replace(temporary, path)
    return len(data)


def load(path: Union[str, os.PathLike]) -> Any:
    """Load the object stored at ``path`` (inverse of :func:`save`)."""
    with open(path, "rb") as handle:
        return loads(handle.read())
