"""Low-level byte stream primitives for the on-disk format.

The serialisers in :mod:`repro.storage.serializers` are written against two
small classes:

* :class:`ByteWriter` -- accumulates bytes; provides unsigned LEB128 varints,
  fixed-width integers, length-prefixed byte strings and a compact encoding
  for :class:`~repro.bits.bitstring.Bits` payloads;
* :class:`ByteReader` -- the exact inverse, with explicit end-of-data and
  bounds checking so that a truncated or corrupted file raises
  :class:`~repro.exceptions.SerializationError` instead of producing garbage.

Bit payloads are written in whichever of two encodings is smaller:

* ``RAW`` -- the bits packed eight per byte, first bit in the high-order
  position of the first byte (the natural ``Bits.to_bytes`` layout);
* ``RLE`` -- the first bit followed by the varint-coded run lengths, which is
  much smaller for the long constant runs produced by ``Init`` and for the
  skewed node bitvectors of real logs.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bits.bitstring import Bits
from repro.exceptions import SerializationError

__all__ = ["ByteReader", "ByteWriter", "bits_to_runs", "runs_to_bits"]

_RAW_MODE = 0
_RLE_MODE = 1


def bits_to_runs(bits: Bits) -> List[Tuple[int, int]]:
    """Decompose ``bits`` into maximal runs ``[(bit, length), ...]``."""
    runs: List[Tuple[int, int]] = []
    current_bit = -1
    current_length = 0
    for bit in bits:
        if bit == current_bit:
            current_length += 1
        else:
            if current_length:
                runs.append((current_bit, current_length))
            current_bit = bit
            current_length = 1
    if current_length:
        runs.append((current_bit, current_length))
    return runs


def runs_to_bits(runs: List[Tuple[int, int]]) -> Bits:
    """Inverse of :func:`bits_to_runs`."""
    out = Bits.empty()
    for bit, length in runs:
        out = out + (Bits.ones(length) if bit else Bits.zeros(length))
    return out


class ByteWriter:
    """Accumulates the bytes of one serialised payload."""

    def __init__(self) -> None:
        self._chunks = bytearray()

    def __len__(self) -> int:
        return len(self._chunks)

    def getvalue(self) -> bytes:
        """The bytes written so far."""
        return bytes(self._chunks)

    # ------------------------------------------------------------------
    # Primitive writers
    # ------------------------------------------------------------------
    def write_raw(self, data: bytes) -> None:
        """Append raw bytes with no framing."""
        self._chunks.extend(data)

    def write_u8(self, value: int) -> None:
        """Append one unsigned byte."""
        if not 0 <= value <= 0xFF:
            raise SerializationError(f"u8 out of range: {value}")
        self._chunks.append(value)

    def write_u32(self, value: int) -> None:
        """Append a fixed 32-bit little-endian unsigned integer."""
        if not 0 <= value < (1 << 32):
            raise SerializationError(f"u32 out of range: {value}")
        self._chunks.extend(value.to_bytes(4, "little"))

    def write_uvarint(self, value: int) -> None:
        """Append an unsigned LEB128 varint."""
        if value < 0:
            raise SerializationError(f"varint must be non-negative, got {value}")
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                self._chunks.append(byte | 0x80)
            else:
                self._chunks.append(byte)
                return

    def write_bool(self, value: bool) -> None:
        """Append a boolean as one byte."""
        self.write_u8(1 if value else 0)

    def write_bytes(self, data: bytes) -> None:
        """Append a length-prefixed byte string."""
        self.write_uvarint(len(data))
        self._chunks.extend(data)

    def write_text(self, text: str) -> None:
        """Append a length-prefixed UTF-8 string."""
        self.write_bytes(text.encode("utf-8"))

    # ------------------------------------------------------------------
    # Bit payloads
    # ------------------------------------------------------------------
    def write_bits(self, bits: Bits) -> None:
        """Append a :class:`Bits` payload, choosing RAW or RLE (whichever is smaller)."""
        raw = _encode_raw(bits)
        rle = _encode_rle(bits)
        if len(rle) < len(raw):
            self.write_u8(_RLE_MODE)
            self.write_uvarint(len(bits))
            self._chunks.extend(rle)
        else:
            self.write_u8(_RAW_MODE)
            self.write_uvarint(len(bits))
            self._chunks.extend(raw)


class ByteReader:
    """Reads back a payload produced by :class:`ByteWriter`.

    Accepts any bytes-like buffer -- ``bytes``, ``bytearray`` or
    ``memoryview`` -- so streamed loaders can hand in their single
    preallocated payload copy without converting it.
    """

    def __init__(self, data: "bytes | bytearray | memoryview") -> None:
        self._data = data
        self._pos = 0

    @property
    def position(self) -> int:
        """Current read offset."""
        return self._pos

    def remaining(self) -> int:
        """Bytes left to read."""
        return len(self._data) - self._pos

    def expect_end(self) -> None:
        """Raise unless the payload has been consumed entirely."""
        if self.remaining():
            raise SerializationError(
                f"{self.remaining()} trailing bytes after the end of the payload"
            )

    # ------------------------------------------------------------------
    # Primitive readers
    # ------------------------------------------------------------------
    def read_raw(self, count: int) -> bytes:
        """Read exactly ``count`` raw bytes."""
        if count < 0 or self._pos + count > len(self._data):
            raise SerializationError("unexpected end of payload")
        out = self._data[self._pos:self._pos + count]
        self._pos += count
        return out

    def read_u8(self) -> int:
        """Read one unsigned byte."""
        return self.read_raw(1)[0]

    def read_u32(self) -> int:
        """Read a fixed 32-bit little-endian unsigned integer."""
        return int.from_bytes(self.read_raw(4), "little")

    def read_uvarint(self) -> int:
        """Read an unsigned LEB128 varint."""
        result = 0
        shift = 0
        while True:
            byte = self.read_u8()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 63:
                raise SerializationError("varint is too long (corrupted payload?)")

    def read_bool(self) -> bool:
        """Read a boolean."""
        value = self.read_u8()
        if value not in (0, 1):
            raise SerializationError(f"invalid boolean byte {value}")
        return bool(value)

    def read_bytes(self) -> bytes:
        """Read a length-prefixed byte string."""
        return self.read_raw(self.read_uvarint())

    def read_text(self) -> str:
        """Read a length-prefixed UTF-8 string."""
        try:
            return self.read_bytes().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SerializationError(f"invalid UTF-8 in payload: {exc}") from exc

    # ------------------------------------------------------------------
    # Bit payloads
    # ------------------------------------------------------------------
    def read_bits(self) -> Bits:
        """Read a :class:`Bits` payload written by :meth:`ByteWriter.write_bits`."""
        mode = self.read_u8()
        length = self.read_uvarint()
        if mode == _RAW_MODE:
            return _decode_raw(self, length)
        if mode == _RLE_MODE:
            return _decode_rle(self, length)
        raise SerializationError(f"unknown bit payload mode {mode}")


# ----------------------------------------------------------------------
# Bit payload encodings
# ----------------------------------------------------------------------
def _encode_raw(bits: Bits) -> bytes:
    if len(bits) == 0:
        return b""
    padded = len(bits) + (-len(bits)) % 8
    return (bits.value << (padded - len(bits))).to_bytes(padded // 8, "big")


def _decode_raw(reader: ByteReader, length: int) -> Bits:
    byte_count = (length + 7) // 8
    raw = reader.read_raw(byte_count)
    if length == 0:
        return Bits.empty()
    value = int.from_bytes(raw, "big") >> (8 * byte_count - length)
    return Bits(value, length)


def _encode_rle(bits: Bits) -> bytes:
    writer = ByteWriter()
    runs = bits_to_runs(bits)
    writer.write_uvarint(len(runs))
    if runs:
        writer.write_u8(runs[0][0])
        for _, run_length in runs:
            writer.write_uvarint(run_length)
    return writer.getvalue()


def _decode_rle(reader: ByteReader, length: int) -> Bits:
    run_count = reader.read_uvarint()
    if run_count == 0:
        if length:
            raise SerializationError("RLE payload with no runs but non-zero length")
        return Bits.empty()
    first_bit = reader.read_u8()
    if first_bit not in (0, 1):
        raise SerializationError(f"invalid first bit {first_bit} in RLE payload")
    bit = first_bit
    out = Bits.empty()
    total = 0
    for _ in range(run_count):
        run_length = reader.read_uvarint()
        total += run_length
        out = out + (Bits.ones(run_length) if bit else Bits.zeros(run_length))
        bit = 1 - bit
    if total != length:
        raise SerializationError(
            f"RLE payload length mismatch: runs add to {total}, header says {length}"
        )
    return out
