"""The RWT2 "frozen image" container: zero-copy mmap persistence.

While the RWT1 logical format (:mod:`repro.storage.format`) serialises the
*content* of a structure and rebuilds every directory on load, RWT2 dumps
each frozen structure's kernel word arrays, rank/select directories and trie
topology bitvectors verbatim -- little-endian uint64, one 4096-byte-aligned
section per array, a JSON section table in the header and a CRC-32 per
section.  :func:`open_image` memory-maps the file and hands every structure
field a zero-copy view of the mapped bytes (``np.frombuffer`` under the
numpy backend, an int-yielding ``memoryview`` cast under pure python), so a
cold open costs O(sections), independent of index size, and N worker
processes share one page-cache copy of the data.

File layout::

    offset 0   : magic  b"RWT2"                     (4 bytes)
    offset 4   : format version, uint32 LE          (4 bytes)
    offset 8   : header JSON length, uint64 LE      (8 bytes)
    offset 16  : header JSON CRC-32, uint32 LE      (4 bytes)
    offset 20  : header JSON  {"type", "meta", "sections"}
    ...        : zero padding to the next 4096-byte boundary (= data_start)
    data_start : sections, each starting at a 4096-byte-aligned offset

Section table entries are ``[name, offset_relative_to_data_start, length,
crc32]``; offsets are relative so the header can be sized before any
absolute offset is known.  Aliasing rule: everything returned by the loader
is read-only and aliases the mapped buffer -- the buffer stays alive as
long as any loaded structure does, and mutating the file while views exist
is undefined behaviour.  See docs/ARCHITECTURE.md, "Storage".
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
import zlib
from array import array
from typing import Any, Dict, List, Tuple, Union

from repro.bits import kernel
from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.dynamic import DynamicWaveletTrie
from repro.core.static import WaveletTrie
from repro.core.succinct_static import SuccinctWaveletTrie
from repro.core.tiers import TieredWaveletTrie, freeze_trie
from repro.db.column import CompressedColumn
from repro.db.table import ColumnStore
from repro.exceptions import SerializationError
from repro.tries.binarize import (
    BytesCodec,
    FixedWidthIntCodec,
    StringCodec,
    Utf8Codec,
)

__all__ = [
    "IMAGE_MAGIC",
    "IMAGE_VERSION",
    "PAGE",
    "ImageWriter",
    "FrozenImage",
    "freeze",
    "dumps_image",
    "loads_image",
    "save_image",
    "open_image",
]

IMAGE_MAGIC = b"RWT2"
IMAGE_VERSION = 1
PAGE = 4096

# magic + u32 version + u64 header length + u32 header CRC.
_HEADER_FIXED = 20


def _align(offset: int) -> int:
    return (offset + PAGE - 1) & ~(PAGE - 1)


def _le_bytes(typecode: str, values) -> bytes:
    """Encode an int sequence as little-endian fixed-width bytes."""
    if isinstance(values, memoryview):
        if values.format == typecode and sys.byteorder == "little":
            return bytes(values)
        values = values.tolist()
    elif not isinstance(values, (list, tuple)):
        tolist = getattr(values, "tolist", None)  # numpy arrays
        if tolist is not None:
            values = tolist()
    encoded = array(typecode, values)
    if sys.byteorder == "big":  # pragma: no cover - big-endian platforms only
        encoded.byteswap()
    return encoded.tobytes()


class ImageWriter:
    """Collects named sections and assembles the RWT2 byte layout.

    Structures append their arrays through the typed ``add_*`` methods
    (everything is normalised to little-endian bytes); :meth:`tobytes`
    computes the aligned physical layout, the per-section CRCs and the
    header, and returns the complete file image.
    """

    def __init__(self) -> None:
        self._sections: List[Tuple[str, bytes]] = []
        self._names: set = set()

    def _add(self, name: str, data: bytes) -> None:
        if name in self._names:
            raise SerializationError(f"duplicate image section name {name!r}")
        self._names.add(name)
        self._sections.append((name, data))

    def add_u64(self, name: str, values) -> None:
        """Add a section of unsigned 64-bit words (the kernel word layout)."""
        self._add(name, _le_bytes("Q", values))

    def add_i64(self, name: str, values) -> None:
        """Add a section of signed 64-bit integers (directory cumulatives)."""
        self._add(name, _le_bytes("q", values))

    def add_u16(self, name: str, values) -> None:
        """Add a section of unsigned 16-bit integers (in-superblock counts)."""
        self._add(name, _le_bytes("H", values))

    def add_bytes(self, name: str, data: bytes) -> None:
        """Add a raw byte section (popcount bytes, RRR class bytes)."""
        self._add(name, bytes(data))

    def tobytes(self, type_name: str, meta: dict) -> bytes:
        """Assemble the complete RWT2 file image."""
        table: List[List[Any]] = []
        relative = 0
        for name, data in self._sections:
            table.append([name, relative, len(data), zlib.crc32(data) & 0xFFFFFFFF])
            relative = _align(relative + len(data))
        header = json.dumps(
            {"type": type_name, "meta": meta, "sections": table},
            separators=(",", ":"),
        ).encode("utf-8")
        data_start = _align(_HEADER_FIXED + len(header))
        out = bytearray(data_start + relative)
        out[0:4] = IMAGE_MAGIC
        out[4:8] = IMAGE_VERSION.to_bytes(4, "little")
        out[8:16] = len(header).to_bytes(8, "little")
        out[16:20] = (zlib.crc32(header) & 0xFFFFFFFF).to_bytes(4, "little")
        out[_HEADER_FIXED : _HEADER_FIXED + len(header)] = header
        for (name, data), entry in zip(self._sections, table):
            offset = data_start + entry[1]
            out[offset : offset + len(data)] = data
        return bytes(out)


def _scalar_view(view: memoryview, typecode: str, itemsize: int):
    """Cast a section to an int-yielding fixed-width read-only view."""
    if view.nbytes % itemsize:
        raise SerializationError(
            f"section length {view.nbytes} is not a multiple of {itemsize}"
        )
    if sys.byteorder == "little":
        return view.cast(typecode)
    count = view.nbytes // itemsize  # pragma: no cover - big-endian only
    return struct.unpack(f"<{count}{typecode}", view)


class FrozenImage:
    """A parsed RWT2 container over an open buffer (mmap region or bytes).

    Presents each named section as a zero-copy view: :meth:`section` yields
    the raw bytes, :meth:`words` / :meth:`int64` / :meth:`uint16` the typed
    casts the structure loaders consume.  All views are read-only and alias
    the buffer; the image (and therefore the mapping) stays alive as long
    as any view-holding structure does.
    """

    def __init__(self, buffer, verify: bool = False, source: str = "<buffer>") -> None:
        view = memoryview(buffer)
        if not view.readonly:
            view = view.toreadonly()
        self._buffer = view
        self._source = source
        total = view.nbytes
        if total < _HEADER_FIXED:
            raise SerializationError(
                f"{source}: too short to be a frozen image ({total} bytes)"
            )
        magic = bytes(view[0:4])
        if magic != IMAGE_MAGIC:
            raise SerializationError(
                f"{source}: bad magic {magic!r}, expected {IMAGE_MAGIC!r}"
            )
        version = int.from_bytes(view[4:8], "little")
        if version != IMAGE_VERSION:
            raise SerializationError(
                f"{source}: unsupported image version: found {version}, "
                f"expected {IMAGE_VERSION}"
            )
        header_length = int.from_bytes(view[8:16], "little")
        if _HEADER_FIXED + header_length > total:
            raise SerializationError(f"{source}: header is truncated")
        header = bytes(view[_HEADER_FIXED : _HEADER_FIXED + header_length])
        stored_crc = int.from_bytes(view[16:20], "little")
        actual_crc = zlib.crc32(header) & 0xFFFFFFFF
        if stored_crc != actual_crc:
            raise SerializationError(
                f"{source}: header checksum mismatch: stored {stored_crc:#010x}, "
                f"computed {actual_crc:#010x}"
            )
        try:
            parsed = json.loads(header.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise SerializationError(
                f"{source}: header is not valid JSON ({error})"
            ) from error
        try:
            self.type_name = parsed["type"]
            self.meta = parsed["meta"]
            entries = parsed["sections"]
        except (KeyError, TypeError) as error:
            raise SerializationError(
                f"{source}: header is missing required fields ({error})"
            ) from error
        data_start = _align(_HEADER_FIXED + header_length)
        self._sections: Dict[str, Tuple[int, int, int]] = {}
        for entry in entries:
            name, relative, length, crc = entry
            offset = data_start + int(relative)
            # Always-on (cheap) truncation check: the section table must fit
            # inside the file even when per-section CRCs are not verified.
            if offset + int(length) > total:
                raise SerializationError(
                    f"{source}: section {name!r} is truncated "
                    f"(needs bytes up to {offset + int(length)}, file has {total})"
                )
            self._sections[name] = (offset, int(length), int(crc))
        if verify:
            self.verify_checksums()

    def section_names(self) -> List[str]:
        """All section names, in file order by construction."""
        return list(self._sections)

    def section(self, name: str) -> memoryview:
        """The raw bytes of a section as a read-only zero-copy view."""
        try:
            offset, length, _ = self._sections[name]
        except KeyError:
            raise SerializationError(
                f"{self._source}: frozen image has no section {name!r}"
            ) from None
        return self._buffer[offset : offset + length]

    def words(self, name: str):
        """A section as an int-yielding uint64 word view (kernel layout)."""
        return kernel.int_words_view(self.section(name))

    def int64(self, name: str):
        """A section as an int-yielding signed 64-bit view."""
        return _scalar_view(self.section(name), "q", 8)

    def uint16(self, name: str):
        """A section as an int-yielding unsigned 16-bit view."""
        return _scalar_view(self.section(name), "H", 2)

    def verify_checksums(self) -> None:
        """Check every section's CRC-32 (touches all mapped pages)."""
        for name, (offset, length, crc) in self._sections.items():
            actual = zlib.crc32(self._buffer[offset : offset + length]) & 0xFFFFFFFF
            if actual != crc:
                raise SerializationError(
                    f"{self._source}: section {name!r} checksum mismatch: "
                    f"stored {crc:#010x}, computed {actual:#010x}"
                )


# ----------------------------------------------------------------------
# Codec headers
# ----------------------------------------------------------------------
def _codec_meta(codec: StringCodec) -> dict:
    if isinstance(codec, Utf8Codec):
        return {"kind": "utf8"}
    if isinstance(codec, BytesCodec):
        return {"kind": "bytes"}
    if isinstance(codec, FixedWidthIntCodec):
        return {
            "kind": "fixed_int",
            "width": codec.width,
            "lsb_first": codec.lsb_first,
        }
    raise SerializationError(
        f"codec {type(codec).__name__} cannot be written to a frozen image"
    )


def _codec_from_meta(meta: dict) -> StringCodec:
    kind = meta.get("kind")
    if kind == "utf8":
        return Utf8Codec()
    if kind == "bytes":
        return BytesCodec()
    if kind == "fixed_int":
        return FixedWidthIntCodec(int(meta["width"]), bool(meta["lsb_first"]))
    raise SerializationError(f"unknown codec kind {kind!r} in frozen image")


# ----------------------------------------------------------------------
# Freezing: convert appendable/dynamic objects to their static snapshot.
# The trie-level lifecycle lives in repro.core.tiers (TrieFreezer /
# freeze_trie); this layer only dispatches the serialisable object kinds
# and keeps the column/store wrappers.
# ----------------------------------------------------------------------
def _freeze_column(column: CompressedColumn) -> CompressedColumn:
    index = column.index
    if isinstance(index, TieredWaveletTrie):
        # Columns flatten to a single static trie (per-tier layout is the
        # trie-level "tiered_trie" image type, not the column wrapper).
        index = index.to_static()
    elif isinstance(index, (AppendOnlyWaveletTrie, DynamicWaveletTrie)):
        index = freeze_trie(index)
    frozen = CompressedColumn(column.name, appendable=False)
    frozen._index = index
    frozen._appendable = False
    return frozen


def freeze(obj):
    """The static snapshot of ``obj`` suitable for a frozen image.

    Already-static objects pass through unchanged; append-only and dynamic
    tries (and columns/stores holding them) are converted to static RRR
    snapshots, and a tiered trie to its fully-frozen
    :meth:`~repro.core.tiers.TieredWaveletTrie.frozen_snapshot` -- all via
    :func:`repro.core.tiers.freeze_trie`, where the tier lifecycle lives.
    Loaded images are therefore always read-only (a loaded tiered trie gets
    a fresh empty mutable tail, so it keeps absorbing writes).
    """
    if isinstance(
        obj,
        (
            AppendOnlyWaveletTrie,
            DynamicWaveletTrie,
            TieredWaveletTrie,
            WaveletTrie,
            SuccinctWaveletTrie,
        ),
    ):
        return freeze_trie(obj)
    if isinstance(obj, CompressedColumn):
        return _freeze_column(obj)
    if isinstance(obj, ColumnStore):
        frozen = ColumnStore(obj.column_names)
        frozen._row_count = len(obj)
        frozen._columns = {
            name: _freeze_column(obj.column(name)) for name in obj.column_names
        }
        return frozen
    raise SerializationError(
        f"objects of type {type(obj).__name__} cannot be written "
        "as a frozen image"
    )


# ----------------------------------------------------------------------
# Per-type image writers/loaders
# ----------------------------------------------------------------------
def _write_static_trie(trie: WaveletTrie, sink: ImageWriter) -> dict:
    return {
        "codec": _codec_meta(trie.codec),
        "trie": trie.to_words_image(sink, ""),
    }


def _load_static_trie(image: FrozenImage) -> WaveletTrie:
    return WaveletTrie.from_words_image(
        image, "", image.meta["trie"], codec=_codec_from_meta(image.meta["codec"])
    )


def _write_succinct_trie(trie: SuccinctWaveletTrie, sink: ImageWriter) -> dict:
    return {
        "codec": _codec_meta(trie._codec),
        "trie": trie.to_words_image(sink, ""),
    }


def _load_succinct_trie(image: FrozenImage) -> SuccinctWaveletTrie:
    return SuccinctWaveletTrie.from_words_image(
        image, "", image.meta["trie"], codec=_codec_from_meta(image.meta["codec"])
    )


def _write_tiered_trie(trie: TieredWaveletTrie, sink: ImageWriter) -> dict:
    if trie._sealing is not None or len(trie._active):
        raise SerializationError(
            "tiered trie must be fully frozen before imaging "
            "(freeze() does this via frozen_snapshot())"
        )
    return {
        "codec": _codec_meta(trie.codec),
        "active_capacity": trie.active_capacity,
        "compact_budget": trie.compact_budget,
        "seed": trie._seed,
        # Per-tier images: tier i writes its sections under prefix "t{i}.".
        "tiers": [
            tier.to_words_image(sink, f"t{position}.")
            for position, tier in enumerate(trie._frozen)
        ],
    }


def _load_tiered_trie(image: FrozenImage) -> TieredWaveletTrie:
    codec = _codec_from_meta(image.meta["codec"])
    tiers = [
        WaveletTrie.from_words_image(image, f"t{position}.", meta, codec=codec)
        for position, meta in enumerate(image.meta["tiers"])
    ]
    return TieredWaveletTrie._from_parts(
        tiers,
        None,
        codec,
        int(image.meta["active_capacity"]),
        int(image.meta["compact_budget"]),
        int(image.meta["seed"]),
    )


def _column_meta(column: CompressedColumn, sink: ImageWriter, prefix: str) -> dict:
    index = column.index
    if not isinstance(index, WaveletTrie) or isinstance(
        index, (AppendOnlyWaveletTrie, DynamicWaveletTrie)
    ):
        raise SerializationError(
            "column index must be frozen to a static WaveletTrie first "
            "(freeze() does this)"
        )
    return {
        "name": column.name,
        "codec": _codec_meta(index.codec),
        "trie": index.to_words_image(sink, prefix),
    }


def _column_from_meta(image: FrozenImage, meta: dict, prefix: str) -> CompressedColumn:
    column = CompressedColumn(meta["name"], appendable=False)
    column._index = WaveletTrie.from_words_image(
        image, prefix, meta["trie"], codec=_codec_from_meta(meta["codec"])
    )
    column._appendable = False
    return column


def _write_column(column: CompressedColumn, sink: ImageWriter) -> dict:
    return {"column": _column_meta(column, sink, "")}


def _load_column(image: FrozenImage) -> CompressedColumn:
    return _column_from_meta(image, image.meta["column"], "")


def _write_store(store: ColumnStore, sink: ImageWriter) -> dict:
    return {
        "row_count": len(store),
        "columns": [
            _column_meta(store.column(name), sink, f"c{position}.")
            for position, name in enumerate(store.column_names)
        ],
    }


def _load_store(image: FrozenImage) -> ColumnStore:
    metas = image.meta["columns"]
    store = ColumnStore([meta["name"] for meta in metas])
    store._row_count = int(image.meta["row_count"])
    store._columns = {
        meta["name"]: _column_from_meta(image, meta, f"c{position}.")
        for position, meta in enumerate(metas)
    }
    return store


_IMAGE_WRITERS = {
    WaveletTrie: ("static_trie", _write_static_trie),
    SuccinctWaveletTrie: ("succinct_trie", _write_succinct_trie),
    TieredWaveletTrie: ("tiered_trie", _write_tiered_trie),
    CompressedColumn: ("column", _write_column),
    ColumnStore: ("column_store", _write_store),
}

_IMAGE_LOADERS = {
    "static_trie": _load_static_trie,
    "succinct_trie": _load_succinct_trie,
    "tiered_trie": _load_tiered_trie,
    "column": _load_column,
    "column_store": _load_store,
}


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def dumps_image(obj) -> bytes:
    """Serialise ``obj`` (frozen first if needed) to RWT2 image bytes."""
    frozen = freeze(obj)
    entry = _IMAGE_WRITERS.get(type(frozen))
    if entry is None:
        raise SerializationError(
            f"objects of type {type(frozen).__name__} cannot be written "
            "as a frozen image"
        )
    type_name, writer_fn = entry
    sink = ImageWriter()
    meta = writer_fn(frozen, sink)
    return sink.tobytes(type_name, meta)


def loads_image(data, verify: bool = False):
    """Open a frozen image held in a bytes-like buffer (zero-copy views)."""
    image = FrozenImage(data, verify=verify)
    return _load_from_image(image)


def save_image(obj, path: Union[str, os.PathLike]) -> int:
    """Write ``obj`` as an RWT2 frozen image; returns the bytes written.

    The write is atomic (temp file + rename), like :func:`repro.storage.save`.
    """
    data = dumps_image(obj)
    path = os.fspath(path)
    temporary = f"{path}.tmp"
    with open(temporary, "wb") as handle:
        handle.write(data)
    os.replace(temporary, path)
    return len(data)


def open_image(path: Union[str, os.PathLike], verify: bool = False):
    """Memory-map an RWT2 file and open its object with zero-copy views.

    The open cost is O(header + sections): no word array is read, decoded
    or copied -- pages fault in lazily on first query and are shared across
    every process that opens the same file.  ``verify=True`` additionally
    checks each section's CRC-32, which touches all pages (section-table
    bounds are always validated, so plain truncation is caught either way).
    """
    path = os.fspath(path)
    with open(path, "rb") as handle:
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as error:
            raise SerializationError(
                f"{path}: cannot map file ({error})"
            ) from error
    image = FrozenImage(mapped, verify=verify, source=str(path))
    return _load_from_image(image)


def _load_from_image(image: FrozenImage):
    loader = _IMAGE_LOADERS.get(image.type_name)
    if loader is None:
        raise SerializationError(
            f"unknown frozen-image type {image.type_name!r} "
            f"(this build reads {sorted(_IMAGE_LOADERS)})"
        )
    return loader(image)
