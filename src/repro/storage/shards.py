"""Per-shard RWT2 image export: the cluster's on-disk exchange format.

The multi-process cluster communicates its data to worker processes
through the filesystem: the supervisor splits every logical column into
position ranges (:func:`repro.db.partition.partition_ranges`), writes each
range as one RWT2 frozen image, and records the layout in a
``manifest.json``.  A worker then needs nothing but the manifest and its
worker index: it ``open_image``-mmaps its slices -- zero-copy, page cache
shared with any co-resident worker -- and serves them.

Each slice is written as a ``tiered_trie`` image holding a single frozen
RRR tier, because of how that image type reopens: a loaded
:class:`~repro.core.tiers.TieredWaveletTrie` gets a fresh *mutable* tail
over its mmap'd frozen tiers.  The tail worker therefore absorbs appends
without copying its frozen slice, while non-tail workers wrap the same
shape read-only -- the single-writer ownership rule enforced at the column
level.

The manifest is the recovery anchor: bounds, column names, and image file
names are all the supervisor needs to respawn a crashed worker into
exactly its starting state (the write journal replays the rest).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Union

from repro.db.column import CompressedColumn
from repro.db.partition import as_column_dict, partition_ranges, slice_column
from repro.core.tiers import TieredWaveletTrie
from repro.storage.image import open_image, save_image

__all__ = ["MANIFEST_NAME", "export_shard_images", "load_manifest", "open_worker_columns"]

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "rwt2-cluster"
MANIFEST_VERSION = 1


def export_shard_images(
    source,
    directory: Union[str, os.PathLike],
    num_workers: int,
    *,
    active_capacity: int = 65536,
    compact_budget: int = 32,
) -> Dict[str, Any]:
    """Split ``source`` into per-worker RWT2 images under ``directory``.

    ``source`` is anything :func:`~repro.db.partition.as_column_dict`
    accepts (a column, a store, or a name->column dict); every column must
    have the same row count (they partition by the same row ranges).
    Writes one image per (column, worker) plus ``manifest.json``, and
    returns the manifest dict.
    """
    columns = as_column_dict(source)
    if not columns:
        raise ValueError("nothing to export: source has no columns")
    totals = {name: len(column) for name, column in columns.items()}
    if len(set(totals.values())) != 1:
        raise ValueError(f"columns must share one row count, got {totals}")
    total = next(iter(totals.values()))
    ranges = partition_ranges(total, num_workers)

    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    images: Dict[str, List[str]] = {}
    for position, (name, column) in enumerate(sorted(columns.items())):
        files: List[str] = []
        for worker, (lo, hi) in enumerate(ranges):
            slice_static = slice_column(column, lo, hi, name)
            shard_trie = TieredWaveletTrie._from_parts(
                [slice_static.index],
                None,
                slice_static.index.codec,
                active_capacity,
                compact_budget,
                0x5EED,
            )
            file_name = f"c{position}-w{worker}.rwt2"
            save_image(shard_trie, os.path.join(directory, file_name))
            files.append(file_name)
        images[name] = files

    manifest: Dict[str, Any] = {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "workers": num_workers,
        "partition": {
            "kind": "position_range",
            "bounds": [0] + [hi for _, hi in ranges],
        },
        "columns": sorted(columns),
        "images": images,
    }
    payload = json.dumps(manifest, indent=2, sort_keys=True)
    tmp_path = os.path.join(directory, MANIFEST_NAME + ".tmp")
    with open(tmp_path, "w", encoding="utf-8") as sink:
        sink.write(payload + "\n")
    os.replace(tmp_path, os.path.join(directory, MANIFEST_NAME))
    return manifest


def load_manifest(directory: Union[str, os.PathLike]) -> Dict[str, Any]:
    """Read and validate the cluster manifest under ``directory``."""
    path = os.path.join(os.fspath(directory), MANIFEST_NAME)
    with open(path, "r", encoding="utf-8") as source:
        manifest = json.load(source)
    if manifest.get("format") != MANIFEST_FORMAT:
        raise ValueError(f"{path}: not a {MANIFEST_FORMAT} manifest")
    if manifest.get("version") != MANIFEST_VERSION:
        raise ValueError(
            f"{path}: unsupported manifest version {manifest.get('version')!r}"
        )
    return manifest


def open_worker_columns(
    directory: Union[str, os.PathLike],
    manifest: Dict[str, Any],
    worker: int,
    *,
    appendable: Optional[bool] = None,
) -> Dict[str, CompressedColumn]:
    """Mmap one worker's shard images back as servable columns.

    ``appendable`` defaults to the ownership rule: only the tail worker
    (the last one) may accept writes; every other worker's columns are
    wrapped read-only, so a misrouted write fails loudly as
    ``invalid_operation`` instead of corrupting the partition.
    """
    if not 0 <= worker < manifest["workers"]:
        raise ValueError(
            f"worker {worker} out of range for {manifest['workers']} workers"
        )
    if appendable is None:
        appendable = worker == manifest["workers"] - 1
    directory = os.fspath(directory)
    columns: Dict[str, CompressedColumn] = {}
    for name in manifest["columns"]:
        path = os.path.join(directory, manifest["images"][name][worker])
        trie = open_image(path)
        if not isinstance(trie, TieredWaveletTrie):
            raise ValueError(f"{path}: expected a tiered_trie shard image")
        columns[name] = CompressedColumn.from_index(name, trie, appendable=appendable)
    return columns
