"""Per-structure serialisers for the on-disk format.

Every serialiser writes a *logical* description of the structure -- the codec,
the trie topology (labels in preorder) and the node bitvector contents -- and
the loader rebuilds the in-memory representation from it.  This keeps the
format independent of internal layout details (RRR block sizes, frozen-block
boundaries, treap priorities), so files written by one version of the library
remain readable after the internals are tuned.

The node bitvector contents are written with the RAW/RLE payload encoding of
:mod:`repro.storage.varint`, so an on-disk Wavelet Trie is roughly the size of
its compressed in-memory form (the RLE mode captures the same skew the RRR
encoding exploits), not the size of the raw value list.

Supported types (see :data:`TYPE_TAGS`): the three Wavelet Trie variants,
the LSM-style :class:`~repro.core.tiers.TieredWaveletTrie` (frozen tiers as
nested static-trie payloads plus the live dynamic tail),
:class:`~repro.db.column.CompressedColumn`, :class:`~repro.db.table.ColumnStore`,
:class:`~repro.db.log_store.AccessLogStore`, and the full-text structures
:class:`~repro.text.fm_index.FMIndex` (BWT codes plus the sampled suffix
array; the loader rebuilds the wavelet tree without re-running suffix
sorting) and :class:`~repro.db.doc_store.DocumentStore`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.bits.bitstring import Bits
from repro.bitvector.append_only import AppendOnlyBitVector
from repro.bitvector.dynamic import DynamicBitVector
from repro.bitvector.plain import PlainBitVector
from repro.bitvector.rle import RLEBitVector
from repro.bitvector.rrr import RRRBitVector
from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.dynamic import DynamicWaveletTrie
from repro.core.node import WaveletTrieNode
from repro.core.static import WaveletTrie
from repro.core.tiers import TieredWaveletTrie, freeze_trie
from repro.bits.packed import PackedIntVector
from repro.bitvector.sparse import SparseBitVector
from repro.db.column import CompressedColumn
from repro.db.doc_store import DocumentStore
from repro.db.log_store import AccessLogStore
from repro.db.table import ColumnStore
from repro.exceptions import SerializationError
from repro.storage.varint import ByteReader, ByteWriter, bits_to_runs
from repro.text.fm_index import FMIndex
from repro.wavelet.huffman import HuffmanWaveletTree
from repro.tries.binarize import (
    BytesCodec,
    FixedWidthIntCodec,
    StringCodec,
    Utf8Codec,
)

__all__ = [
    "TYPE_TAGS",
    "read_object",
    "write_object",
]

# ----------------------------------------------------------------------
# Codec (de)serialisation
# ----------------------------------------------------------------------
_CODEC_UTF8 = 1
_CODEC_BYTES = 2
_CODEC_FIXED_INT = 3


def _write_codec(writer: ByteWriter, codec: StringCodec) -> None:
    if isinstance(codec, Utf8Codec):
        writer.write_u8(_CODEC_UTF8)
    elif isinstance(codec, BytesCodec):
        writer.write_u8(_CODEC_BYTES)
    elif isinstance(codec, FixedWidthIntCodec):
        writer.write_u8(_CODEC_FIXED_INT)
        writer.write_uvarint(codec.width)
        writer.write_bool(codec.lsb_first)
    else:
        raise SerializationError(
            f"codec {type(codec).__name__} has no registered serialiser"
        )


def _read_codec(reader: ByteReader) -> StringCodec:
    tag = reader.read_u8()
    if tag == _CODEC_UTF8:
        return Utf8Codec()
    if tag == _CODEC_BYTES:
        return BytesCodec()
    if tag == _CODEC_FIXED_INT:
        width = reader.read_uvarint()
        lsb_first = reader.read_bool()
        return FixedWidthIntCodec(width, lsb_first=lsb_first)
    raise SerializationError(f"unknown codec tag {tag}")


# ----------------------------------------------------------------------
# Trie topology (labels + node bitvector contents, preorder)
# ----------------------------------------------------------------------
_NODE_ABSENT = 0
_NODE_LEAF = 1
_NODE_INTERNAL = 2

# A factory takes the decoded bitvector content and returns the node bitvector.
BitvectorFactory = Callable[[Bits], Any]


def _bitvector_content(bitvector) -> Bits:
    """The logical bit content of a node bitvector, as a :class:`Bits` value."""
    return Bits.from_iterable(bitvector.iter_range(0, len(bitvector)))


def _write_node(writer: ByteWriter, node: Optional[WaveletTrieNode]) -> None:
    if node is None:
        writer.write_u8(_NODE_ABSENT)
        return
    if node.is_leaf:
        writer.write_u8(_NODE_LEAF)
        writer.write_bits(node.label)
        return
    writer.write_u8(_NODE_INTERNAL)
    writer.write_bits(node.label)
    writer.write_bits(_bitvector_content(node.bitvector))
    _write_node(writer, node.children[0])
    _write_node(writer, node.children[1])


def _read_node(
    reader: ByteReader, factory: BitvectorFactory
) -> Optional[WaveletTrieNode]:
    kind = reader.read_u8()
    if kind == _NODE_ABSENT:
        return None
    label = reader.read_bits()
    if kind == _NODE_LEAF:
        return WaveletTrieNode(label=label)
    if kind != _NODE_INTERNAL:
        raise SerializationError(f"unknown node kind {kind}")
    content = reader.read_bits()
    node = WaveletTrieNode(label=label, bitvector=factory(content))
    left = _read_node(reader, factory)
    right = _read_node(reader, factory)
    if left is None or right is None:
        raise SerializationError("internal node with a missing child")
    node.attach(0, left)
    node.attach(1, right)
    return node


# ----------------------------------------------------------------------
# Wavelet Trie variants
# ----------------------------------------------------------------------
def _write_static_trie(writer: ByteWriter, trie: WaveletTrie) -> None:
    _write_codec(writer, trie.codec)
    writer.write_text(trie.bitvector_kind)
    writer.write_uvarint(len(trie))
    _write_node(writer, trie.root)


def _read_static_trie(reader: ByteReader) -> WaveletTrie:
    codec = _read_codec(reader)
    kind = reader.read_text()
    size = reader.read_uvarint()
    factories: Dict[str, BitvectorFactory] = {
        "rrr": RRRBitVector,
        "plain": PlainBitVector,
        "rle": RLEBitVector,
    }
    if kind not in factories:
        raise SerializationError(f"unknown static bitvector kind {kind!r}")
    trie = WaveletTrie([], codec=codec, bitvector=kind)
    trie._root = _read_node(reader, factories[kind])
    trie._size = size
    _validate_size(trie, size)
    return trie


def _write_append_only_trie(writer: ByteWriter, trie: AppendOnlyWaveletTrie) -> None:
    _write_codec(writer, trie.codec)
    writer.write_uvarint(trie._block_size)
    writer.write_uvarint(len(trie))
    _write_node(writer, trie.root)


def _read_append_only_trie(reader: ByteReader) -> AppendOnlyWaveletTrie:
    codec = _read_codec(reader)
    block_size = reader.read_uvarint()
    size = reader.read_uvarint()

    def factory(content: Bits) -> AppendOnlyBitVector:
        vector = AppendOnlyBitVector(block_size=block_size)
        vector.extend(content)
        return vector

    trie = AppendOnlyWaveletTrie([], codec=codec, block_size=block_size)
    trie._root = _read_node(reader, factory)
    trie._size = size
    _validate_size(trie, size)
    return trie


def _write_dynamic_trie(writer: ByteWriter, trie: DynamicWaveletTrie) -> None:
    _write_codec(writer, trie.codec)
    writer.write_uvarint(trie._seed)
    writer.write_uvarint(len(trie))
    _write_node(writer, trie.root)


def _read_dynamic_trie(reader: ByteReader) -> DynamicWaveletTrie:
    codec = _read_codec(reader)
    seed = reader.read_uvarint()
    size = reader.read_uvarint()
    trie = DynamicWaveletTrie([], codec=codec, seed=seed)

    def factory(content: Bits) -> DynamicBitVector:
        trie._next_seed = (trie._next_seed * 6364136223846793005 + 1) % (1 << 63)
        return DynamicBitVector.from_runs(bits_to_runs(content), seed=trie._next_seed)

    trie._root = _read_node(reader, factory)
    trie._size = size
    _validate_size(trie, size)
    return trie


def _validate_size(trie, size: int) -> None:
    """Cross-check the stored element count against the root bitvector."""
    root = trie.root
    if root is None:
        if size != 0:
            raise SerializationError("non-zero size stored for an empty trie")
        return
    if root.is_leaf:
        return  # constant sequences carry no bitvector; size cannot be checked
    if len(root.bitvector) != size:
        raise SerializationError(
            f"stored size {size} does not match root bitvector length "
            f"{len(root.bitvector)}"
        )


# ----------------------------------------------------------------------
# Database layer
# ----------------------------------------------------------------------
def _write_column(writer: ByteWriter, column: CompressedColumn) -> None:
    writer.write_text(column.name)
    writer.write_bool(column.appendable)
    index = column.index
    if isinstance(index, AppendOnlyWaveletTrie):
        writer.write_u8(TYPE_TAGS[AppendOnlyWaveletTrie])
        _write_append_only_trie(writer, index)
    elif isinstance(index, WaveletTrie):
        writer.write_u8(TYPE_TAGS[WaveletTrie])
        _write_static_trie(writer, index)
    else:
        raise SerializationError(
            f"column index of type {type(index).__name__} cannot be serialised"
        )


def _read_column(reader: ByteReader) -> CompressedColumn:
    name = reader.read_text()
    appendable = reader.read_bool()
    tag = reader.read_u8()
    if tag == TYPE_TAGS[AppendOnlyWaveletTrie]:
        index = _read_append_only_trie(reader)
    elif tag == TYPE_TAGS[WaveletTrie]:
        index = _read_static_trie(reader)
    else:
        raise SerializationError(f"unexpected column index tag {tag}")
    column = CompressedColumn(name, appendable=appendable)
    column._index = index
    column._appendable = appendable
    return column


def _write_column_store(writer: ByteWriter, store: ColumnStore) -> None:
    writer.write_uvarint(len(store))
    writer.write_uvarint(len(store.column_names))
    for name in store.column_names:
        _write_column(writer, store.column(name))


def _read_column_store(reader: ByteReader) -> ColumnStore:
    row_count = reader.read_uvarint()
    column_count = reader.read_uvarint()
    if column_count == 0:
        raise SerializationError("a serialised ColumnStore must have columns")
    columns = [_read_column(reader) for _ in range(column_count)]
    store = ColumnStore([column.name for column in columns])
    store._columns = {column.name: column for column in columns}
    store._row_count = row_count
    for column in columns:
        if len(column) != row_count:
            raise SerializationError(
                f"column {column.name!r} has {len(column)} rows, table header says {row_count}"
            )
    return store


def _write_access_log(writer: ByteWriter, log: AccessLogStore) -> None:
    writer.write_u8(TYPE_TAGS[AppendOnlyWaveletTrie])
    _write_append_only_trie(writer, log._index)
    writer.write_uvarint(len(log._timestamps))
    previous = 0
    for timestamp in log._timestamps:
        writer.write_uvarint(timestamp - previous)  # delta coding; non-decreasing
        previous = timestamp


def _read_access_log(reader: ByteReader) -> AccessLogStore:
    tag = reader.read_u8()
    if tag != TYPE_TAGS[AppendOnlyWaveletTrie]:
        raise SerializationError(f"unexpected access-log index tag {tag}")
    index = _read_append_only_trie(reader)
    count = reader.read_uvarint()
    if count != len(index):
        raise SerializationError(
            f"access log has {len(index)} entries but {count} timestamps"
        )
    timestamps = []
    current = 0
    for _ in range(count):
        current += reader.read_uvarint()
        timestamps.append(current)
    log = AccessLogStore()
    log._index = index
    log._timestamps = timestamps
    return log
def _write_tiered_trie(writer: ByteWriter, trie: TieredWaveletTrie) -> None:
    # The in-flight sealing tier (if any) is written as a static tier: its
    # content is sealed, so freezing it eagerly changes no logical state.
    writer.write_uvarint(trie.active_capacity)
    writer.write_uvarint(trie.compact_budget)
    writer.write_uvarint(trie._seed)
    frozen = list(trie._frozen)
    if trie._sealing is not None:
        frozen.append(freeze_trie(trie._sealing[0]))
    writer.write_uvarint(len(frozen))
    for tier in frozen:
        _write_static_trie(writer, tier)
    _write_dynamic_trie(writer, trie._active)


def _read_tiered_trie(reader: ByteReader) -> TieredWaveletTrie:
    active_capacity = reader.read_uvarint()
    compact_budget = reader.read_uvarint()
    seed = reader.read_uvarint()
    frozen = [_read_static_trie(reader) for _ in range(reader.read_uvarint())]
    active = _read_dynamic_trie(reader)
    return TieredWaveletTrie._from_parts(
        frozen, active, active.codec, active_capacity, compact_budget, seed
    )


# ----------------------------------------------------------------------
# Full-text search layer
# ----------------------------------------------------------------------
def _write_fm_index(writer: ByteWriter, fm: FMIndex) -> None:
    # The BWT codes and the sampled suffix array fully determine the index;
    # the loader rebuilds the wavelet tree and the C table from them without
    # re-running suffix sorting.
    writer.write_uvarint(fm.sa_sample)
    writer.write_text(fm.bitvector_kind)
    writer.write_uvarint(fm.text_length)
    writer.write_text(fm.alphabet)
    rows = fm.text_length + 1
    for code in fm._bwt.access_many(range(rows)):
        writer.write_uvarint(code)
    writer.write_bits(_bitvector_content(fm._marked))
    writer.write_uvarint(len(fm._samples))
    for position in fm._samples:
        writer.write_uvarint(position)
    writer.write_uvarint(len(fm._isa_samples))
    for row in fm._isa_samples:
        writer.write_uvarint(row)


def _read_fm_index(reader: ByteReader) -> FMIndex:
    sa_sample = reader.read_uvarint()
    kind = reader.read_text()
    factories = {"plain": PlainBitVector, "rrr": RRRBitVector}
    if kind not in factories:
        raise SerializationError(f"unknown BWT bitvector kind {kind!r}")
    text_length = reader.read_uvarint()
    alphabet = reader.read_text()
    rows = text_length + 1
    bwt = [reader.read_uvarint() for _ in range(rows)]
    for code in bwt:
        if code > len(alphabet):
            raise SerializationError(
                f"BWT code {code} exceeds alphabet size {len(alphabet)}"
            )
    marked = reader.read_bits()
    if len(marked) != rows:
        raise SerializationError(
            f"sample bitvector has {len(marked)} bits for {rows} BWT rows"
        )
    width = max(1, (rows - 1).bit_length())
    samples = [reader.read_uvarint() for _ in range(reader.read_uvarint())]
    isa_samples = [reader.read_uvarint() for _ in range(reader.read_uvarint())]
    if len(samples) != sum(marked):
        raise SerializationError(
            f"{len(samples)} suffix-array samples stored but "
            f"{sum(marked)} rows are marked"
        )
    return FMIndex._from_parts(
        text_length,
        alphabet,
        sa_sample,
        kind,
        HuffmanWaveletTree(bwt, bitvector_factory=factories[kind]),
        RRRBitVector(list(marked)),
        PackedIntVector(width, samples),
        PackedIntVector(width, isa_samples),
    )


def _write_doc_store(writer: ByteWriter, store: DocumentStore) -> None:
    writer.write_uvarint(len(store))
    previous = 0
    for doc in range(len(store)):
        start = store._starts.select(1, doc)
        writer.write_uvarint(start - previous)  # delta coding; ascending
        previous = start
    _write_fm_index(writer, store.fm_index)


def _read_doc_store(reader: ByteReader) -> DocumentStore:
    doc_count = reader.read_uvarint()
    starts = []
    current = 0
    for _ in range(doc_count):
        current += reader.read_uvarint()
        starts.append(current)
    fm = _read_fm_index(reader)
    if doc_count and starts[-1] >= fm.text_length:
        raise SerializationError(
            f"document start {starts[-1]} beyond text length {fm.text_length}"
        )
    vector = SparseBitVector(max(fm.text_length, 1), starts) if doc_count else None
    return DocumentStore._from_parts(fm, vector, doc_count)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
#: Stable numeric tag of every serialisable type (written into the container
#: header; never reuse a retired number).
TYPE_TAGS: Dict[type, int] = {
    WaveletTrie: 1,
    AppendOnlyWaveletTrie: 2,
    DynamicWaveletTrie: 3,
    CompressedColumn: 4,
    ColumnStore: 5,
    AccessLogStore: 6,
    TieredWaveletTrie: 7,
    FMIndex: 8,
    DocumentStore: 9,
}

_WRITERS: Dict[type, Callable[[ByteWriter, Any], None]] = {
    WaveletTrie: _write_static_trie,
    AppendOnlyWaveletTrie: _write_append_only_trie,
    DynamicWaveletTrie: _write_dynamic_trie,
    CompressedColumn: _write_column,
    ColumnStore: _write_column_store,
    AccessLogStore: _write_access_log,
    TieredWaveletTrie: _write_tiered_trie,
    FMIndex: _write_fm_index,
    DocumentStore: _write_doc_store,
}

_READERS: Dict[int, Callable[[ByteReader], Any]] = {
    TYPE_TAGS[WaveletTrie]: _read_static_trie,
    TYPE_TAGS[AppendOnlyWaveletTrie]: _read_append_only_trie,
    TYPE_TAGS[DynamicWaveletTrie]: _read_dynamic_trie,
    TYPE_TAGS[CompressedColumn]: _read_column,
    TYPE_TAGS[ColumnStore]: _read_column_store,
    TYPE_TAGS[AccessLogStore]: _read_access_log,
    TYPE_TAGS[TieredWaveletTrie]: _read_tiered_trie,
    TYPE_TAGS[FMIndex]: _read_fm_index,
    TYPE_TAGS[DocumentStore]: _read_doc_store,
}


def write_object(obj: Any) -> Tuple[int, bytes]:
    """Serialise ``obj``; returns ``(type_tag, payload_bytes)``.

    Subclasses are matched on their exact type first and then on their bases,
    so e.g. the dynamic trie (which inherits the static query machinery) is
    dispatched to its own serialiser.
    """
    for klass in type(obj).__mro__:
        if klass in _WRITERS:
            writer = ByteWriter()
            _WRITERS[klass](writer, obj)
            return TYPE_TAGS[klass], writer.getvalue()
    raise SerializationError(
        f"objects of type {type(obj).__name__} cannot be serialised; "
        f"supported types: {sorted(c.__name__ for c in TYPE_TAGS)}"
    )


def read_object(type_tag: int, payload: bytes) -> Any:
    """Rebuild the object stored with ``type_tag`` from ``payload``."""
    if type_tag not in _READERS:
        raise SerializationError(f"unknown type tag {type_tag}")
    reader = ByteReader(payload)
    obj = _READERS[type_tag](reader)
    reader.expect_end()
    return obj
