"""On-disk persistence for the Wavelet Trie and the database layer.

The paper's motivating applications (column stores, access-log analytics) need
indexes that survive a process restart.  This package provides two container
formats behind one set of entry points:

>>> from repro import WaveletTrie
>>> from repro.storage import dumps, loads
>>> trie = WaveletTrie(["/a/x", "/a/y", "/a/x"])
>>> restored = loads(dumps(trie))
>>> restored.rank("/a/x", 3)
2

* :func:`~repro.storage.format.dumps` / :func:`~repro.storage.format.loads`
  -- bytes in, bytes out;
* :func:`~repro.storage.format.save` / :func:`~repro.storage.format.load`
  -- atomic write to / read from a file path.

**RWT1** (``save``/``dumps``) stores the *logical* structure (codec, trie
topology, node bitvector contents in run-length form), not the in-memory
layout, so it is stable across internal tuning of block sizes and rebuild
policies -- but :func:`load` must decode and rebuild every directory.

**RWT2** (:func:`~repro.storage.image.save_image` /
:func:`~repro.storage.image.open_image`) is the "frozen image": the physical
word arrays and rank/select directories dumped verbatim in page-aligned
sections, memory-mapped back with zero-copy views, so a cold open costs
O(sections) regardless of index size and worker processes share one page
cache.  :func:`load` and :func:`loads` sniff the magic and accept both.
See docs/ARCHITECTURE.md, "Storage", for the decision table.

:mod:`repro.storage.shards` builds on RWT2 as the serving cluster's
exchange format: :func:`~repro.storage.shards.export_shard_images` splits
a store into per-worker slice images plus a ``manifest.json``, and
:func:`~repro.storage.shards.open_worker_columns` mmaps one worker's
slices back as servable columns (only the tail worker's are appendable).
"""

from repro.storage.format import FORMAT_VERSION, MAGIC, dumps, load, loads, save
from repro.storage.image import (
    IMAGE_MAGIC,
    IMAGE_VERSION,
    dumps_image,
    freeze,
    loads_image,
    open_image,
    save_image,
)
from repro.storage.serializers import TYPE_TAGS
from repro.storage.shards import (
    MANIFEST_NAME,
    export_shard_images,
    load_manifest,
    open_worker_columns,
)

__all__ = [
    "FORMAT_VERSION",
    "IMAGE_MAGIC",
    "IMAGE_VERSION",
    "MAGIC",
    "MANIFEST_NAME",
    "TYPE_TAGS",
    "dumps",
    "dumps_image",
    "export_shard_images",
    "freeze",
    "load",
    "load_manifest",
    "loads",
    "loads_image",
    "open_image",
    "open_worker_columns",
    "save",
    "save_image",
]
