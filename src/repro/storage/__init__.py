"""On-disk persistence for the Wavelet Trie and the database layer.

The paper's motivating applications (column stores, access-log analytics) need
indexes that survive a process restart.  This package provides a compact,
versioned, checksummed binary format together with four entry points:

>>> from repro import WaveletTrie
>>> from repro.storage import dumps, loads
>>> trie = WaveletTrie(["/a/x", "/a/y", "/a/x"])
>>> restored = loads(dumps(trie))
>>> restored.rank("/a/x", 3)
2

* :func:`~repro.storage.format.dumps` / :func:`~repro.storage.format.loads`
  -- bytes in, bytes out;
* :func:`~repro.storage.format.save` / :func:`~repro.storage.format.load`
  -- atomic write to / read from a file path.

The serialised form stores the *logical* structure (codec, trie topology,
node bitvector contents in run-length form), not the in-memory layout, so it
is stable across internal tuning of block sizes and rebuild policies.
"""

from repro.storage.format import FORMAT_VERSION, MAGIC, dumps, load, loads, save
from repro.storage.serializers import TYPE_TAGS

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "TYPE_TAGS",
    "dumps",
    "load",
    "loads",
    "save",
]
