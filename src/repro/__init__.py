"""Reproduction of "The Wavelet Trie: Maintaining an Indexed Sequence of Strings
in Compressed Space" (Grossi & Ottaviano, PODS 2012).

The package provides a complete, pure-Python implementation of the paper's
primary contribution -- the Wavelet Trie in its static, append-only and fully
dynamic variants -- together with every substrate the construction relies on:
succinct bitvectors (plain, RRR, RLE, Elias-Fano, append-only, dynamic),
succinct tree encodings (DFUDS, LOUDS), Patricia tries (pointer based and
succinct), classic Wavelet Trees, the Section 6 probabilistically balanced
dynamic Wavelet Tree, the related-work baselines, entropy/space analysis
helpers, synthetic workload generators and a small column-store layer.

The most convenient entry points are re-exported here:

>>> from repro import WaveletTrie
>>> wt = WaveletTrie(["/a/x", "/a/y", "/b", "/a/x"])
>>> wt.access(3)
'/a/x'
>>> wt.rank("/a/x", 4)
2
>>> wt.rank_prefix("/a", 4)
3
"""

from repro.core import (
    AppendOnlyWaveletTrie,
    DynamicWaveletTrie,
    WaveletTrie,
)
from repro.core.interface import IndexedStringSequence
from repro.wavelet import (
    BalancedDynamicWaveletTree,
    HuffmanWaveletTree,
    WaveletTree,
)

__version__ = "1.0.0"

__all__ = [
    "AppendOnlyWaveletTrie",
    "BalancedDynamicWaveletTree",
    "DynamicWaveletTrie",
    "HuffmanWaveletTree",
    "IndexedStringSequence",
    "WaveletTree",
    "WaveletTrie",
    "__version__",
]
