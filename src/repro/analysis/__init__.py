"""Entropy measures, information-theoretic lower bounds and space accounting.

These helpers turn the space column of the paper's Table 1 into numbers that
can be measured and compared:

* :mod:`repro.analysis.entropy` -- ``H0``, ``H(p)``, ``B(m, n)``;
* :mod:`repro.analysis.bounds` -- ``LT(Sset)``, ``LB(S) = LT + n H0``,
  ``PT(Sset)``, the average height ``h̃`` (Definition 3.4);
* :mod:`repro.analysis.space` -- measured space reports for every structure
  in the package.
"""

from repro.analysis.entropy import (
    binary_entropy,
    binomial_lower_bound,
    empirical_entropy,
    empirical_entropy_bits,
)
from repro.analysis.bounds import SequenceBounds, compute_bounds
from repro.analysis.space import SpaceReport, wavelet_trie_space_report

__all__ = [
    "SequenceBounds",
    "SpaceReport",
    "binary_entropy",
    "binomial_lower_bound",
    "compute_bounds",
    "empirical_entropy",
    "empirical_entropy_bits",
    "wavelet_trie_space_report",
]
