"""Measured space reports for Wavelet Tries and related structures.

The report splits the measured size into the components the paper reasons
about: the bitvector payloads (which should track ``nH0(S)``), the trie labels
(``|L|``), the topology/delimiters, and the pointer overhead of the dynamic
representations (``PT``).  Benchmarks compare these numbers against the
bounds from :mod:`repro.analysis.bounds`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["SpaceReport", "wavelet_trie_space_report"]

_WORD = 64


@dataclass
class SpaceReport:
    """Space breakdown of a structure, in bits."""

    structure: str
    """Human-readable structure name."""

    total_bits: int = 0
    """Sum of all accounted components."""

    components: Dict[str, int] = field(default_factory=dict)
    """Per-component sizes in bits."""

    def add(self, name: str, bits: int) -> None:
        """Add a component to the report."""
        self.components[name] = self.components.get(name, 0) + int(bits)
        self.total_bits += int(bits)

    def bits_per_element(self, n: int) -> float:
        """Total bits divided by the number of sequence elements."""
        return self.total_bits / n if n else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flatten for tabular output."""
        out: Dict[str, float] = {"total_bits": self.total_bits}
        out.update(self.components)
        return out


def wavelet_trie_space_report(trie, name: Optional[str] = None) -> SpaceReport:
    """Break down the measured space of any Wavelet Trie variant.

    The argument must expose ``nodes()`` yielding objects with ``label``,
    ``bitvector`` (None on leaves) and ``is_leaf`` -- all three Wavelet Trie
    variants in :mod:`repro.core` do.
    """
    report = SpaceReport(structure=name or type(trie).__name__)
    node_count = 0
    label_bits = 0
    bitvector_bits = 0
    bitvector_overhead = 0
    for node in trie.nodes():
        node_count += 1
        label_bits += len(node.label)
        vector = node.bitvector
        if vector is not None:
            bitvector_bits += vector.size_in_bits()
            overhead = getattr(vector, "overhead_bits", None)
            if callable(overhead):
                bitvector_overhead += overhead()
    report.add("node_labels", label_bits)
    report.add("node_bitvectors", bitvector_bits)
    if bitvector_overhead:
        report.add("bitvector_pointer_overhead", bitvector_overhead)
    # Pointer-machine charge for the trie topology: 4 words per node for the
    # dynamic variants (paper's PT term); the static variant can instead be
    # charged its succinct topology size if it exposes one.
    succinct_topology = getattr(trie, "succinct_topology_bits", None)
    if callable(succinct_topology):
        report.add("topology", succinct_topology())
    else:
        report.add("topology_pointers", node_count * 4 * _WORD)
    report.components["node_count"] = node_count
    return report
