"""Information-theoretic bounds for an indexed sequence of strings.

For a sequence ``S`` with distinct-string set ``Sset`` the paper defines
(Section 3, Theorems 3.6/3.7 and Table 1):

* ``LT(Sset) = |L| + e + B(e, |L| + e)`` -- lower bound for storing the
  string set, where ``L`` is the concatenation of the Patricia trie labels
  and ``e`` the number of trie edges;
* ``nH0(S)`` -- zero-order entropy of the sequence seen over the alphabet
  ``Sset``;
* ``LB(S) = LT(Sset) + nH0(S)`` -- the lower bound for the whole problem;
* ``PT(Sset) = O(|Sset| w)`` -- pointer overhead of the dynamic Patricia trie;
* ``h̃`` -- the average height (Definition 3.4), which controls the
  redundancy term ``o(h̃ n)``.

:func:`compute_bounds` evaluates all of them for a concrete sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.entropy import binomial_lower_bound, empirical_entropy
from repro.bits.bitstring import Bits
from repro.tries.binarize import StringCodec, default_codec
from repro.tries.patricia import PatriciaTrie

__all__ = ["SequenceBounds", "compute_bounds"]

_WORDS_PER_TRIE_NODE = 4  # label pointer, label length, two child pointers


@dataclass(frozen=True)
class SequenceBounds:
    """All the quantities appearing in the space column of Table 1 (in bits)."""

    length: int
    """Number of strings in the sequence (n)."""

    distinct: int
    """Number of distinct strings (|Sset|)."""

    total_input_bits: int
    """Sum of the binarised lengths of all sequence elements."""

    label_bits: int
    """|L|: total Patricia-trie label length."""

    edges: int
    """e = 2(|Sset| - 1): Patricia-trie edge count."""

    lt_bits: float
    """LT(Sset) = |L| + e + B(e, |L| + e)."""

    entropy_per_symbol: float
    """H0(S), in bits per element, over the alphabet Sset."""

    entropy_bits: float
    """n * H0(S)."""

    lb_bits: float
    """LB(S) = LT + n H0."""

    pt_bits: int
    """PT(Sset): dynamic Patricia trie pointer overhead (|Sset| nodes * O(w))."""

    average_height: float
    """h̃ (Definition 3.4): mean number of internal nodes per element path."""

    total_height_bits: float
    """h̃ * n: the total length of all node bitvectors."""

    def as_dict(self) -> Dict[str, float]:
        """Render as a flat dictionary (used by the benchmark reports)."""
        return {
            "n": self.length,
            "distinct": self.distinct,
            "input_bits": self.total_input_bits,
            "L_bits": self.label_bits,
            "edges": self.edges,
            "LT_bits": self.lt_bits,
            "H0_per_symbol": self.entropy_per_symbol,
            "nH0_bits": self.entropy_bits,
            "LB_bits": self.lb_bits,
            "PT_bits": self.pt_bits,
            "avg_height": self.average_height,
            "hn_bits": self.total_height_bits,
        }


def compute_bounds(
    values: Sequence,
    codec: Optional[StringCodec] = None,
    word_bits: int = 64,
) -> SequenceBounds:
    """Compute every Table 1 space quantity for a concrete sequence of values.

    Parameters
    ----------
    values:
        The sequence of application-level values (strings by default).
    codec:
        Binarisation codec; defaults to UTF-8 with a NUL terminator.
    word_bits:
        Machine word size ``w`` used for the ``PT`` pointer charge.
    """
    codec = codec or default_codec()
    encoded: List[Bits] = [codec.to_bits(value) for value in values]
    n = len(encoded)
    distinct_keys = {bits for bits in encoded}
    trie = PatriciaTrie(distinct_keys)

    label_bits = trie.label_bits()
    # The first-child/next-sibling transformation in the paper makes the node
    # count |Sset|; the edge count of the binary Patricia trie is 2(|Sset|-1).
    edges = trie.edge_count()
    lt_bits = (
        label_bits + edges + binomial_lower_bound(edges, label_bits + edges)
        if n
        else 0.0
    )

    entropy_per_symbol = empirical_entropy(encoded)
    entropy_bits = n * entropy_per_symbol

    heights = [trie.height_of(bits) for bits in encoded]
    average_height = sum(heights) / n if n else 0.0

    pt_bits = len(distinct_keys) * _WORDS_PER_TRIE_NODE * word_bits * 2 - (
        _WORDS_PER_TRIE_NODE * word_bits if distinct_keys else 0
    )
    # (2|Sset| - 1 nodes, each charged _WORDS_PER_TRIE_NODE words.)

    return SequenceBounds(
        length=n,
        distinct=len(distinct_keys),
        total_input_bits=sum(len(bits) for bits in encoded),
        label_bits=label_bits,
        edges=edges,
        lt_bits=lt_bits,
        entropy_per_symbol=entropy_per_symbol,
        entropy_bits=entropy_bits,
        lb_bits=lt_bits + entropy_bits,
        pt_bits=pt_bits,
        average_height=average_height,
        total_height_bits=average_height * n,
    )
