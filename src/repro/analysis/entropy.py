"""Information-theoretic quantities used throughout the paper.

* ``H0(s)`` -- zero-order empirical entropy of a sequence (paper Section 2);
* ``H(p)`` -- binary entropy of a bit fraction;
* ``B(m, n) = ceil(log2 C(n, m))`` -- the lower bound for storing an
  ``m``-subset of an ``n``-universe, used in the RRR and trie-delimiter
  bounds.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Hashable, Iterable, Sequence

__all__ = [
    "binary_entropy",
    "binomial_lower_bound",
    "empirical_entropy",
    "empirical_entropy_bits",
    "symbol_counts",
]


def symbol_counts(sequence: Iterable[Hashable]) -> Counter:
    """Multiplicity of each distinct symbol in ``sequence``."""
    return Counter(sequence)


def empirical_entropy(sequence: Iterable[Hashable]) -> float:
    """Zero-order empirical entropy ``H0`` in bits per symbol.

    ``H0(s) = -sum_c (n_c / n) log2(n_c / n)``; the entropy of the empty
    sequence is defined as 0.
    """
    counts = symbol_counts(sequence)
    total = sum(counts.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts.values():
        fraction = count / total
        entropy -= fraction * math.log2(fraction)
    return entropy


def empirical_entropy_bits(sequence: Sequence[Hashable]) -> float:
    """Total zero-order entropy ``n * H0(s)`` in bits."""
    return len(sequence) * empirical_entropy(sequence)


def binary_entropy(p: float) -> float:
    """Binary entropy ``H(p)`` in bits; ``H(0) = H(1) = 0``."""
    if p < 0.0 or p > 1.0:
        raise ValueError(f"probability {p} outside [0, 1]")
    if p == 0.0 or p == 1.0:
        return 0.0
    return -p * math.log2(p) - (1.0 - p) * math.log2(1.0 - p)


def binomial_lower_bound(m: int, n: int) -> int:
    """``B(m, n) = ceil(log2 C(n, m))`` bits, the subset storage lower bound."""
    if m < 0 or n < 0 or m > n:
        raise ValueError(f"invalid arguments B({m}, {n})")
    combinations = math.comb(n, m)
    if combinations <= 1:
        return 0
    return math.ceil(math.log2(combinations))
