"""Markdown/report helpers that compare measured space against the paper's bounds.

These are the functions behind ``EXPERIMENTS.md`` and the CLI ``info``
command: they evaluate the Table 1 space quantities (``LT``, ``nH0``, ``LB``,
``PT``, ``h̃ n``) for a workload, measure the three Wavelet Trie variants built
on it, and render the comparison as aligned text or Markdown tables.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.bounds import SequenceBounds, compute_bounds
from repro.analysis.space import SpaceReport, wavelet_trie_space_report
from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.dynamic import DynamicWaveletTrie
from repro.core.static import WaveletTrie
from repro.tries.binarize import StringCodec

__all__ = [
    "format_table",
    "space_vs_bounds",
    "space_vs_bounds_table",
    "variant_space_sweep",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], markdown: bool = True) -> str:
    """Render ``rows`` as a Markdown (default) or aligned plain-text table."""
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[index]) for row in rendered)) if rendered else len(str(header))
        for index, header in enumerate(headers)
    ]
    if markdown:
        lines = [
            "| " + " | ".join(str(h).ljust(w) for h, w in zip(headers, widths)) + " |",
            "|" + "|".join("-" * (w + 2) for w in widths) + "|",
        ]
        for row in rendered:
            lines.append("| " + " | ".join(cell.ljust(w) for cell, w in zip(row, widths)) + " |")
    else:
        lines = ["  ".join(str(h).ljust(w) for h, w in zip(headers, widths))]
        for row in rendered:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _render_cell(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:,.1f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def space_vs_bounds(
    values: Sequence[Any],
    codec: Optional[StringCodec] = None,
    variants: Sequence[str] = ("static", "append-only", "dynamic"),
) -> Tuple[SequenceBounds, Dict[str, SpaceReport]]:
    """Build the requested Wavelet Trie variants and measure them against the bounds.

    Returns the :class:`SequenceBounds` of the workload and one
    :class:`SpaceReport` per variant.
    """
    bounds = compute_bounds(values, codec=codec)
    reports: Dict[str, SpaceReport] = {}
    builders = {
        "static": lambda: WaveletTrie(values, codec=codec),
        "append-only": lambda: AppendOnlyWaveletTrie(values, codec=codec),
        "dynamic": lambda: DynamicWaveletTrie(values, codec=codec),
    }
    for variant in variants:
        if variant not in builders:
            raise ValueError(f"unknown variant {variant!r}; expected one of {sorted(builders)}")
        trie = builders[variant]()
        reports[variant] = wavelet_trie_space_report(trie, name=variant)
    return bounds, reports


def space_vs_bounds_table(
    values: Sequence[Any],
    codec: Optional[StringCodec] = None,
    variants: Sequence[str] = ("static", "append-only", "dynamic"),
    markdown: bool = True,
) -> str:
    """One table row per variant: measured bits vs the Table 1 decomposition."""
    bounds, reports = space_vs_bounds(values, codec=codec, variants=variants)
    headers = [
        "variant",
        "measured bits",
        "bits/elem",
        "nH0(S)",
        "LT",
        "LB = LT+nH0",
        "PT",
        "measured / LB",
    ]
    rows: List[List[Any]] = []
    for variant, report in reports.items():
        ratio = report.total_bits / bounds.lb_bits if bounds.lb_bits else float("nan")
        rows.append(
            [
                variant,
                report.total_bits,
                round(report.bits_per_element(bounds.length), 1),
                round(bounds.entropy_bits, 1),
                round(bounds.lt_bits, 1),
                round(bounds.lb_bits, 1),
                bounds.pt_bits,
                f"{ratio:.2f}x",
            ]
        )
    table = format_table(headers, rows, markdown=markdown)
    summary = (
        f"n = {bounds.length:,}, |Sset| = {bounds.distinct:,}, "
        f"H0(S) = {bounds.entropy_per_symbol:.2f} bits/elem, "
        f"avg height h̃ = {bounds.average_height:.1f}, "
        f"raw input = {bounds.total_input_bits:,} bits"
    )
    return f"{summary}\n\n{table}"


def variant_space_sweep(
    workloads: Dict[str, Sequence[Any]],
    codec: Optional[StringCodec] = None,
    markdown: bool = True,
) -> str:
    """The T1-SPACE experiment table: one block per named workload."""
    blocks = []
    for name, values in workloads.items():
        blocks.append(f"### {name}\n\n" + space_vs_bounds_table(values, codec=codec, markdown=markdown))
    return "\n\n".join(blocks)
