"""DFUDS (Depth-First Unary Degree Sequence) succinct tree encoding.

The static Wavelet Trie stores its Patricia trie topology with a DFUDS
encoding, ``2k + o(k)`` bits for ``k`` nodes, while supporting navigation in
constant time (paper Section 3, citing Benoit et al.).  This module encodes an
arbitrary ordinal tree given by a ``children`` function; nodes are identified
by their preorder rank.

Encoding: the sequence starts with an artificial open parenthesis, then each
node in preorder contributes ``degree`` open parentheses followed by one close
parenthesis.  The resulting sequence is balanced, and navigation reduces to
rank/select/find_close on it.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Sequence, TypeVar

from repro.succinct.bp import BalancedParentheses
from repro.exceptions import OutOfBoundsError

__all__ = ["DFUDSTree"]

NodeT = TypeVar("NodeT")


class DFUDSTree:
    """Succinct ordinal tree with DFUDS navigation.

    Build with :meth:`from_tree`, passing the root object and a function that
    returns the ordered children of a node.  Nodes of the encoded tree are
    referred to by *preorder rank* (the root is 0).
    """

    __slots__ = ("_bp", "_node_count")

    def __init__(self, parentheses: Sequence[int], node_count: int) -> None:
        self._bp = BalancedParentheses(parentheses)
        self._node_count = node_count

    # ------------------------------------------------------------------
    @classmethod
    def from_tree(
        cls, root: NodeT, children: Callable[[NodeT], Sequence[NodeT]]
    ) -> "DFUDSTree":
        """Encode the tree rooted at ``root``; ``children`` lists ordered children."""
        bits: List[int] = [1]  # artificial initial open parenthesis
        count = 0
        stack = [root]
        # Iterative preorder traversal (children pushed in reverse order).
        while stack:
            node = stack.pop()
            count += 1
            kids = list(children(node))
            bits.extend([1] * len(kids))
            bits.append(0)
            for kid in reversed(kids):
                stack.append(kid)
        return cls(bits, count)

    @classmethod
    def from_degrees(cls, preorder_degrees: Sequence[int]) -> "DFUDSTree":
        """Encode directly from the preorder sequence of node degrees."""
        bits: List[int] = [1]
        for degree in preorder_degrees:
            bits.extend([1] * degree)
            bits.append(0)
        return cls(bits, len(preorder_degrees))

    # ------------------------------------------------------------------
    # Frozen-image (RWT2) exchange -- see docs/ARCHITECTURE.md, "Storage"
    # ------------------------------------------------------------------
    def to_words_image(self, sink, prefix: str) -> dict:
        """Write the balanced-parentheses structure into an image sink."""
        return {
            "node_count": self._node_count,
            "bp": self._bp.to_words_image(sink, prefix + "bp."),
        }

    @classmethod
    def from_words_image(cls, image, prefix: str, meta: dict) -> "DFUDSTree":
        """Open from a frozen image; the parentheses alias the buffer."""
        self = cls.__new__(cls)
        self._bp = BalancedParentheses.from_words_image(
            image, prefix + "bp.", meta["bp"]
        )
        self._node_count = int(meta["node_count"])
        return self

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._node_count

    @property
    def node_count(self) -> int:
        """Number of nodes in the tree."""
        return self._node_count

    def _node_position(self, node: int) -> int:
        """Starting position of the DFUDS description of ``node``."""
        self._check_node(node)
        if node == 0:
            return 1
        return self._bp.select_close(node - 1) + 1

    def _position_to_node(self, position: int) -> int:
        """Preorder rank of the node whose description starts at ``position``."""
        return self._bp.rank_close(position)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._node_count:
            raise OutOfBoundsError(
                f"node {node} out of range for {self._node_count} nodes"
            )

    # ------------------------------------------------------------------
    def degree(self, node: int) -> int:
        """Number of children of ``node``."""
        position = self._node_position(node)
        return self._bp.select_close(node) - position

    def is_leaf(self, node: int) -> bool:
        """True if ``node`` has no children."""
        return self.degree(node) == 0

    def child(self, node: int, index: int) -> int:
        """The ``index``-th (0-based, left to right) child of ``node``."""
        degree = self.degree(node)
        if not 0 <= index < degree:
            raise OutOfBoundsError(
                f"child index {index} out of range for degree {degree}"
            )
        position = self._node_position(node)
        open_position = position + degree - 1 - index
        child_position = self._bp.find_close(open_position) + 1
        return self._position_to_node(child_position)

    def children(self, node: int) -> Iterator[int]:
        """Iterate over the children of ``node`` left to right."""
        for index in range(self.degree(node)):
            yield self.child(node, index)

    def parent(self, node: int) -> int:
        """The parent of ``node``; raises for the root."""
        self._check_node(node)
        if node == 0:
            raise OutOfBoundsError("the root has no parent")
        position = self._node_position(node)
        open_position = self._bp.find_open(position - 1)
        # The open parenthesis belongs to the parent's description.
        parent_close = self._bp.rank_close(open_position)
        return parent_close

    def child_rank(self, node: int) -> int:
        """0-based index of ``node`` among its parent's children."""
        self._check_node(node)
        if node == 0:
            raise OutOfBoundsError("the root has no parent")
        position = self._node_position(node)
        open_position = self._bp.find_open(position - 1)
        parent = self.parent(node)
        parent_position = self._node_position(parent)
        parent_degree = self.degree(parent)
        return parent_position + parent_degree - 1 - open_position

    def preorder_nodes(self) -> Iterator[int]:
        """All nodes in preorder (they are simply 0..node_count-1)."""
        return iter(range(self._node_count))

    def leaf_count(self) -> int:
        """Number of leaves."""
        return sum(1 for node in range(self._node_count) if self.is_leaf(node))

    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Encoded size: the parenthesis sequence plus its directories."""
        return self._bp.size_in_bits()

    def parentheses(self) -> str:
        """The raw DFUDS parenthesis string (testing helper)."""
        return self._bp.to01()
