"""LOUDS (Level-Order Unary Degree Sequence) succinct tree encoding.

LOUDS encodes an ordinal tree in ``2k + o(k)`` bits with navigation by
rank/select.  It is included as an alternative topology encoding for the
ablation study (DFUDS vs. LOUDS for the static Patricia trie) and as a
self-contained, well-tested succinct tree primitive.

Encoding: a virtual super-root is encoded as ``10``; then every node in BFS
(level) order contributes ``degree`` one-bits followed by a zero-bit.  Nodes
are identified by their level-order rank (the root is 0).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, List, Sequence, TypeVar

from repro.bitvector.plain import PlainBitVector
from repro.exceptions import OutOfBoundsError

__all__ = ["LOUDSTree"]

NodeT = TypeVar("NodeT")


class LOUDSTree:
    """Succinct ordinal tree with LOUDS navigation (nodes = level-order ranks)."""

    __slots__ = ("_bits", "_node_count")

    def __init__(self, bits: Sequence[int], node_count: int) -> None:
        self._bits = PlainBitVector(bits)
        self._node_count = node_count

    # ------------------------------------------------------------------
    @classmethod
    def from_tree(
        cls, root: NodeT, children: Callable[[NodeT], Sequence[NodeT]]
    ) -> "LOUDSTree":
        """Encode the tree rooted at ``root``; ``children`` lists ordered children."""
        bits: List[int] = [1, 0]  # super-root
        count = 0
        queue = deque([root])
        while queue:
            node = queue.popleft()
            count += 1
            kids = list(children(node))
            bits.extend([1] * len(kids))
            bits.append(0)
            queue.extend(kids)
        return cls(bits, count)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._node_count

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return self._node_count

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._node_count:
            raise OutOfBoundsError(
                f"node {node} out of range for {self._node_count} nodes"
            )

    # ------------------------------------------------------------------
    # Navigation (standard LOUDS formulas, 0-based nodes)
    # ------------------------------------------------------------------
    def degree(self, node: int) -> int:
        """Number of children of ``node``."""
        self._check_node(node)
        start = self._bits.select0(node) + 1
        end = self._bits.select0(node + 1)
        return end - start

    def is_leaf(self, node: int) -> bool:
        """True if ``node`` has no children."""
        return self.degree(node) == 0

    def child(self, node: int, index: int) -> int:
        """The ``index``-th (0-based) child of ``node``."""
        degree = self.degree(node)
        if not 0 <= index < degree:
            raise OutOfBoundsError(
                f"child index {index} out of range for degree {degree}"
            )
        start = self._bits.select0(node) + 1
        one_rank = self._bits.rank1(start + index)
        return one_rank  # ranks are 1-based counts; child of rank r is node r (super-root's 1 maps to root 0)

    def children(self, node: int) -> Iterator[int]:
        """Iterate over the children of ``node``."""
        for index in range(self.degree(node)):
            yield self.child(node, index)

    def parent(self, node: int) -> int:
        """Parent of ``node``; raises for the root."""
        self._check_node(node)
        if node == 0:
            raise OutOfBoundsError("the root has no parent")
        # The 1-bit that created `node` is the (node)-th 1 (0-based: node-th);
        # its position p lies inside the parent's degree block.
        position = self._bits.select1(node)
        return self._bits.rank0(position) - 1

    def child_rank(self, node: int) -> int:
        """0-based index of ``node`` among its parent's children."""
        self._check_node(node)
        if node == 0:
            raise OutOfBoundsError("the root has no parent")
        position = self._bits.select1(node)
        parent = self._bits.rank0(position) - 1
        start = self._bits.select0(parent) + 1
        return position - start

    def leaf_count(self) -> int:
        """Number of leaves."""
        return sum(1 for node in range(self._node_count) if self.is_leaf(node))

    def bfs_nodes(self) -> Iterator[int]:
        """All nodes in level order (simply 0..node_count-1)."""
        return iter(range(self._node_count))

    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Encoded size of the LOUDS bitvector."""
        return self._bits.size_in_bits()
