"""Succinct tree encodings and prefix-sum structures.

These are the substrates used by the static Wavelet Trie representation
(paper Section 3): a DFUDS encoding of the Patricia trie topology, balanced
parentheses support, LOUDS as an alternative encoding for the ablation study,
and static/dynamic partial-sum structures used to delimit concatenated labels
and bitvector encodings.
"""

from repro.succinct.bp import BalancedParentheses
from repro.succinct.dfuds import DFUDSTree
from repro.succinct.fenwick import FenwickTree
from repro.succinct.louds import LOUDSTree
from repro.succinct.partial_sums import PartialSums, StaticPartialSums

__all__ = [
    "BalancedParentheses",
    "DFUDSTree",
    "FenwickTree",
    "LOUDSTree",
    "PartialSums",
    "StaticPartialSums",
]
