"""Balanced-parentheses support over a bitvector.

A sequence of parentheses is stored as bits (``1`` = ``'('``, ``0`` = ``')'``)
with block-sampled *excess* directories supporting ``find_close``,
``find_open`` and ``enclose``.  This is the machinery underneath the DFUDS
encoding of the static Patricia trie (paper Section 3); the per-block scan
bounded by the block size plays the role of the four-Russians lookup tables of
the word-RAM construction.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

from repro.bits.bitstring import Bits
from repro.bitvector.plain import PlainBitVector
from repro.exceptions import OutOfBoundsError

__all__ = ["BalancedParentheses"]

_BLOCK = 64

OPEN = 1
CLOSE = 0


class BalancedParentheses:
    """Rank/select/excess operations over a balanced parentheses sequence."""

    __slots__ = ("_bits", "_block_excess", "_block_min")

    def __init__(self, parentheses: Union[Bits, Sequence[int], str]) -> None:
        if isinstance(parentheses, str):
            bits = Bits.from_iterable(
                1 if char == "(" else 0 for char in parentheses
            )
        elif isinstance(parentheses, Bits):
            bits = parentheses
        else:
            bits = Bits.from_iterable(parentheses)
        self._bits = PlainBitVector(bits)
        # Per-block cumulative excess (before block) and minimum excess inside.
        block_excess: List[int] = []
        block_min: List[int] = []
        excess = 0
        length = len(self._bits)
        for start in range(0, length, _BLOCK):
            block_excess.append(excess)
            minimum = excess
            for pos in range(start, min(start + _BLOCK, length)):
                excess += 1 if self._bits.access(pos) else -1
                minimum = min(minimum, excess)
            block_min.append(minimum)
        block_excess.append(excess)
        self._block_excess = block_excess
        self._block_min = block_min

    # ------------------------------------------------------------------
    # Frozen-image (RWT2) exchange -- see docs/ARCHITECTURE.md, "Storage"
    # ------------------------------------------------------------------
    def to_words_image(self, sink, prefix: str) -> dict:
        """Write the parentheses bitvector and block directories to a sink."""
        bits_meta = self._bits.to_words_image(sink, prefix + "bits.")
        sink.add_i64(prefix + "bexc", self._block_excess)
        sink.add_i64(prefix + "bmin", self._block_min)
        return {"bits": bits_meta}

    @classmethod
    def from_words_image(cls, image, prefix: str, meta: dict) -> "BalancedParentheses":
        """Open from a frozen image; no excess directory is recomputed."""
        self = cls.__new__(cls)
        self._bits = PlainBitVector.from_words_image(
            image, prefix + "bits.", meta["bits"]
        )
        self._block_excess = image.int64(prefix + "bexc")
        self._block_min = image.int64(prefix + "bmin")
        return self

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._bits)

    def access(self, pos: int) -> int:
        """1 for an open parenthesis, 0 for a close parenthesis."""
        return self._bits.access(pos)

    def is_open(self, pos: int) -> bool:
        """True if position ``pos`` holds an open parenthesis."""
        return self._bits.access(pos) == OPEN

    def rank_open(self, pos: int) -> int:
        """Number of open parentheses in ``[0, pos)``."""
        return self._bits.rank(OPEN, pos)

    def rank_close(self, pos: int) -> int:
        """Number of close parentheses in ``[0, pos)``."""
        return self._bits.rank(CLOSE, pos)

    def select_open(self, idx: int) -> int:
        """Position of the ``idx``-th open parenthesis."""
        return self._bits.select(OPEN, idx)

    def select_close(self, idx: int) -> int:
        """Position of the ``idx``-th close parenthesis."""
        return self._bits.select(CLOSE, idx)

    def excess(self, pos: int) -> int:
        """Number of opens minus closes in ``[0, pos)``."""
        if not 0 <= pos <= len(self._bits):
            raise OutOfBoundsError(f"position {pos} out of range")
        return 2 * self._bits.rank(OPEN, pos) - pos

    # ------------------------------------------------------------------
    def find_close(self, pos: int) -> int:
        """Position of the close parenthesis matching the open one at ``pos``."""
        if not self.is_open(pos):
            raise ValueError(f"position {pos} does not hold an open parenthesis")
        target = self.excess(pos)  # excess before pos; we need it back after the match
        excess = target + 1
        length = len(self._bits)
        current = pos + 1
        # Finish the current block with a scan.
        block_end = min(length, ((pos // _BLOCK) + 1) * _BLOCK)
        while current < block_end:
            excess += 1 if self._bits.access(current) else -1
            if excess == target:
                return current
            current += 1
        # Skip whole blocks whose minimum excess stays above the target.
        block = current // _BLOCK
        while block < len(self._block_min):
            if self._block_min[block] <= target:
                break
            block += 1
        current = block * _BLOCK
        excess = self._block_excess[block] if block < len(self._block_excess) else excess
        while current < length:
            excess += 1 if self._bits.access(current) else -1
            if excess == target:
                return current
            current += 1
        raise OutOfBoundsError(f"no matching close parenthesis for position {pos}")

    def find_open(self, pos: int) -> int:
        """Position of the open parenthesis matching the close one at ``pos``."""
        if self.is_open(pos):
            raise ValueError(f"position {pos} does not hold a close parenthesis")
        target = self.excess(pos + 1)
        current = pos - 1
        while current >= 0:
            if self.excess(current) == target and self.is_open(current):
                return current
            current -= 1
        raise OutOfBoundsError(f"no matching open parenthesis for position {pos}")

    def enclose(self, pos: int) -> int:
        """Position of the open parenthesis most tightly enclosing node ``pos``."""
        if not self.is_open(pos):
            raise ValueError(f"position {pos} does not hold an open parenthesis")
        target = self.excess(pos) - 1
        current = pos - 1
        while current >= 0:
            if self.is_open(current) and self.excess(current) == target:
                return current
            current -= 1
        raise OutOfBoundsError(f"position {pos} has no enclosing parenthesis")

    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Encoded size: the parentheses plus the block directories."""
        return (
            self._bits.size_in_bits()
            + (len(self._block_excess) + len(self._block_min)) * 64
        )

    def to01(self) -> str:
        """Render as a parenthesis string (testing helper)."""
        return "".join("(" if bit else ")" for bit in self._bits)
