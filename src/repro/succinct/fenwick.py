"""Fenwick (binary indexed) trees for dynamic prefix sums.

The paper's constructions use constant-time partial-sum structures (fusion
trees over O(log n) entries, Lemma 4.7(c)); in this pure-Python engineering
we use Fenwick trees, which give O(log n) ``prefix_sum``/``add`` and
O(log n) ``search`` (find the first prefix exceeding a target).  They back the
dynamic partial sums in :mod:`repro.succinct.partial_sums` and a few internal
directories.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.exceptions import OutOfBoundsError

__all__ = ["FenwickTree"]


class FenwickTree:
    """Dynamic prefix sums over a fixed-length array of non-negative integers."""

    __slots__ = ("_tree", "_size", "_total")

    def __init__(self, values: Iterable[int] = ()) -> None:
        values = list(values)
        self._size = len(values)
        self._tree = [0] * (self._size + 1)
        self._total = 0
        for index, value in enumerate(values):
            if value:
                self.add(index, value)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def total(self) -> int:
        """Sum of all values."""
        return self._total

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` (possibly negative) to the value at ``index``."""
        if not 0 <= index < self._size:
            raise OutOfBoundsError(f"index {index} out of range for size {self._size}")
        self._total += delta
        index += 1
        while index <= self._size:
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, count: int) -> int:
        """Sum of the first ``count`` values."""
        if not 0 <= count <= self._size:
            raise OutOfBoundsError(f"count {count} out of range for size {self._size}")
        result = 0
        while count > 0:
            result += self._tree[count]
            count -= count & (-count)
        return result

    def range_sum(self, start: int, stop: int) -> int:
        """Sum of values in ``[start, stop)``."""
        if start > stop:
            raise OutOfBoundsError(f"invalid range [{start}, {stop})")
        return self.prefix_sum(stop) - self.prefix_sum(start)

    def value_at(self, index: int) -> int:
        """The current value at ``index``."""
        return self.range_sum(index, index + 1)

    def search(self, target: int) -> int:
        """Smallest ``i`` such that ``prefix_sum(i + 1) > target``.

        Requires all values to be non-negative.  Raises if ``target`` is not
        smaller than the total sum.
        """
        if target < 0 or target >= self._total:
            raise OutOfBoundsError(
                f"target {target} out of range for total {self._total}"
            )
        position = 0
        remaining = target
        bit_mask = 1 << (self._size.bit_length())
        while bit_mask:
            next_position = position + bit_mask
            if next_position <= self._size and self._tree[next_position] <= remaining:
                position = next_position
                remaining -= self._tree[next_position]
            bit_mask >>= 1
        return position

    def to_list(self) -> List[int]:
        """Materialise the underlying values."""
        return [self.value_at(index) for index in range(self._size)]

    def size_in_bits(self, word: int = 64) -> int:
        """Space used, counting one word per tree slot."""
        return (len(self._tree) + 2) * word
