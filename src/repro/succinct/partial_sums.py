"""Partial-sum structures used to delimit variable-length encodings.

The static Wavelet Trie stores the node labels concatenated in one bitvector
``L`` and the per-node RRR encodings concatenated in another; both need a
partial-sum structure to find where the ``i``-th piece starts (paper
Section 3, cost ``B(e, |L| + e) + o(...)`` bits).

* :class:`StaticPartialSums` -- immutable; an Elias-Fano sequence over the
  cumulative sums, matching the paper's space bound up to lower-order terms.
* :class:`PartialSums` -- dynamic; a growable Fenwick-backed variant used by
  the append-only structures.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.bitvector.sparse import EliasFanoSequence
from repro.exceptions import OutOfBoundsError
from repro.succinct.fenwick import FenwickTree

__all__ = ["PartialSums", "StaticPartialSums"]


class StaticPartialSums:
    """Immutable partial sums of a sequence of non-negative lengths.

    ``start(i)`` returns the sum of the first ``i`` lengths; ``find(pos)``
    returns the index of the piece containing offset ``pos``.
    """

    __slots__ = ("_cumulative", "_count")

    def __init__(self, lengths: Iterable[int]) -> None:
        cumulative: List[int] = [0]
        for length in lengths:
            if length < 0:
                raise ValueError("lengths must be non-negative")
            cumulative.append(cumulative[-1] + length)
        self._count = len(cumulative) - 1
        self._cumulative = EliasFanoSequence(
            cumulative, universe=cumulative[-1] + 1
        )

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Frozen-image (RWT2) exchange -- see docs/ARCHITECTURE.md, "Storage"
    # ------------------------------------------------------------------
    def to_words_image(self, sink, prefix: str) -> dict:
        """Write the Elias-Fano cumulative sequence into an image sink."""
        return {
            "count": self._count,
            "cumulative": self._cumulative.to_words_image(sink, prefix + "cum."),
        }

    @classmethod
    def from_words_image(cls, image, prefix: str, meta: dict) -> "StaticPartialSums":
        """Open from a frozen image; the cumulative sequence aliases it."""
        self = cls.__new__(cls)
        self._count = int(meta["count"])
        self._cumulative = EliasFanoSequence.from_words_image(
            image, prefix + "cum.", meta["cumulative"]
        )
        return self

    @property
    def total(self) -> int:
        """Sum of all lengths."""
        return self._cumulative[self._count]

    def start(self, index: int) -> int:
        """Sum of the first ``index`` lengths (start offset of piece ``index``)."""
        if not 0 <= index <= self._count:
            raise OutOfBoundsError(f"index {index} out of range for {self._count} pieces")
        return self._cumulative[index]

    def length(self, index: int) -> int:
        """Length of piece ``index``."""
        if not 0 <= index < self._count:
            raise OutOfBoundsError(f"index {index} out of range for {self._count} pieces")
        return self._cumulative[index + 1] - self._cumulative[index]

    def find(self, pos: int) -> int:
        """Index of the piece containing global offset ``pos``."""
        if not 0 <= pos < self.total:
            raise OutOfBoundsError(f"offset {pos} out of range for total {self.total}")
        # rank over the monotone cumulative sequence: number of starts <= pos.
        return self._cumulative.rank(pos + 1) - 1

    def size_in_bits(self) -> int:
        """Encoded size in bits."""
        return self._cumulative.size_in_bits()


class PartialSums:
    """Dynamic partial sums supporting append and point updates.

    Backed by a doubling Fenwick tree; used by the append-only Wavelet Trie
    bookkeeping where the number of pieces grows over time.
    """

    __slots__ = ("_fenwick", "_count")

    def __init__(self, lengths: Iterable[int] = ()) -> None:
        initial = list(lengths)
        capacity = max(8, len(initial))
        self._fenwick = FenwickTree([0] * capacity)
        self._count = 0
        for length in initial:
            self.append(length)

    def __len__(self) -> int:
        return self._count

    @property
    def total(self) -> int:
        """Sum of all lengths."""
        return self._fenwick.prefix_sum(self._count)

    def append(self, length: int) -> None:
        """Append a new piece of the given length."""
        if length < 0:
            raise ValueError("lengths must be non-negative")
        if self._count == len(self._fenwick):
            self._grow()
        self._fenwick.add(self._count, length)
        self._count += 1

    def _grow(self) -> None:
        values = self._fenwick.to_list()[: self._count]
        self._fenwick = FenwickTree(values + [0] * max(8, len(values)))

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` to the length of piece ``index``."""
        if not 0 <= index < self._count:
            raise OutOfBoundsError(f"index {index} out of range for {self._count} pieces")
        self._fenwick.add(index, delta)

    def start(self, index: int) -> int:
        """Sum of the first ``index`` lengths."""
        if not 0 <= index <= self._count:
            raise OutOfBoundsError(f"index {index} out of range for {self._count} pieces")
        return self._fenwick.prefix_sum(index)

    def length(self, index: int) -> int:
        """Length of piece ``index``."""
        if not 0 <= index < self._count:
            raise OutOfBoundsError(f"index {index} out of range for {self._count} pieces")
        return self._fenwick.range_sum(index, index + 1)

    def find(self, pos: int) -> int:
        """Index of the piece containing global offset ``pos``."""
        if not 0 <= pos < self.total:
            raise OutOfBoundsError(f"offset {pos} out of range for total {self.total}")
        return self._fenwick.search(pos)

    def to_list(self) -> List[int]:
        """Materialise the piece lengths."""
        return [self.length(index) for index in range(self._count)]

    def size_in_bits(self, word: int = 64) -> int:
        """Space used by the Fenwick backing store."""
        return self._fenwick.size_in_bits(word)
