"""A searchable document store over the FM-index.

The documents are concatenated with NUL separators -- the same layout as the
:class:`~repro.baselines.text_collection.TextCollectionSequence` baseline --
and the concatenation is indexed by an :class:`~repro.text.fm_index.FMIndex`,
with a sparse bitvector marking where each document starts.  Substring
queries run over the whole collection at once (backward search never scans a
document), and the starts bitvector maps every matched text position back to
its ``(document, offset)`` pair: patterns cannot contain the separator, so a
match never crosses a document boundary.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.bitvector.sparse import SparseBitVector
from repro.exceptions import OutOfBoundsError
from repro.text.fm_index import FMIndex

__all__ = ["DocumentStore"]

_SEPARATOR = "\x00"


class DocumentStore:
    """Full-text searchable collection of documents (FM-index backed).

    Parameters
    ----------
    documents:
        The document bodies (strings; the NUL separator is reserved).
    sa_sample:
        Suffix-array sampling rate forwarded to the FM-index -- the
        space/time knob for ``locate``/``document``.
    bitvector:
        BWT node bitvector flavour forwarded to the FM-index (``"plain"``
        or ``"rrr"``; see :class:`~repro.text.fm_index.FMIndex`).

    Examples
    --------
    >>> store = DocumentStore(["state of the art", "art of state"])
    >>> store.count("state")
    2
    >>> store.locate("art")
    [(0, 13), (1, 0)]
    >>> store.document(1)
    'art of state'
    """

    def __init__(
        self,
        documents: Iterable[str] = (),
        sa_sample: int = 32,
        bitvector: str = "plain",
    ) -> None:
        documents = list(documents)
        for document in documents:
            if _SEPARATOR in document:
                raise ValueError("documents must not contain the NUL separator")
        self._doc_count = len(documents)
        parts: List[str] = []
        starts: List[int] = []
        offset = 0
        for document in documents:
            starts.append(offset)
            parts.append(document)
            parts.append(_SEPARATOR)
            offset += len(document) + 1
        self._text_length = offset
        self._fm = FMIndex("".join(parts), sa_sample=sa_sample, bitvector=bitvector)
        self._starts = SparseBitVector(max(offset, 1), starts) if documents else None

    @classmethod
    def _from_parts(
        cls, fm: FMIndex, starts: SparseBitVector, doc_count: int
    ) -> "DocumentStore":
        """Rebuild from deserialised parts (no re-indexing)."""
        self = cls.__new__(cls)
        self._doc_count = doc_count
        self._text_length = fm.text_length
        self._fm = fm
        self._starts = starts
        return self

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._doc_count

    @property
    def text_length(self) -> int:
        """Concatenated text length, separators included."""
        return self._text_length

    @property
    def fm_index(self) -> FMIndex:
        """The underlying FM-index over the separator-joined text."""
        return self._fm

    def _check_document(self, doc: int) -> None:
        if not 0 <= doc < self._doc_count:
            raise OutOfBoundsError(
                f"document {doc} out of range for {self._doc_count} documents"
            )

    def _check_pattern(self, pattern: str) -> None:
        if not isinstance(pattern, str):
            raise TypeError(
                f"pattern must be str, got {type(pattern).__name__}"
            )
        if not pattern:
            raise ValueError("pattern must be non-empty (it would match everywhere)")
        if _SEPARATOR in pattern:
            raise ValueError("pattern must not contain the NUL separator")

    def _bounds(self, doc: int) -> Tuple[int, int]:
        start = self._starts.select(1, doc)
        if doc + 1 < self._doc_count:
            return start, self._starts.select(1, doc + 1) - 1
        return start, self._text_length - 1

    # ------------------------------------------------------------------
    def document(self, doc: int) -> str:
        """The body of document ``doc``, extracted from the FM-index."""
        self._check_document(doc)
        start, stop = self._bounds(doc)
        return self._fm.extract(start, stop)

    def count(self, pattern: str) -> int:
        """Total occurrences of ``pattern`` across all documents."""
        self._check_pattern(pattern)
        return self._fm.count(pattern)

    def count_many(self, patterns: Sequence[str]) -> List[int]:
        """``count`` for each pattern; the backward searches advance
        together, amortised to one batched rank per distinct next character
        per step (see :meth:`repro.text.fm_index.FMIndex.count_many`)."""
        for pattern in patterns:
            self._check_pattern(pattern)
        return self._fm.count_many(patterns)

    def locate(self, pattern: str) -> List[Tuple[int, int]]:
        """Every occurrence as ``(document, offset)``, ascending.

        The FM-index yields text positions; one batched ``rank``/``select``
        pair on the starts bitvector maps them all to document coordinates.
        """
        self._check_pattern(pattern)
        positions = self._fm.locate(pattern)
        if not positions:
            return []
        docs = [rank - 1 for rank in self._starts.rank_many(1, [p + 1 for p in positions])]
        doc_starts = self._starts.select_many(1, docs)
        return [
            (doc, position - start)
            for doc, position, start in zip(docs, positions, doc_starts)
        ]

    def count_in_document(self, doc: int, pattern: str) -> int:
        """Occurrences of ``pattern`` inside document ``doc`` alone."""
        self._check_document(doc)
        self._check_pattern(pattern)
        return sum(1 for match_doc, _ in self.locate(pattern) if match_doc == doc)

    def locate_in_document(self, doc: int, pattern: str) -> List[int]:
        """Offsets of ``pattern`` inside document ``doc``, ascending."""
        self._check_document(doc)
        self._check_pattern(pattern)
        return [
            offset for match_doc, offset in self.locate(pattern) if match_doc == doc
        ]

    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """FM-index space plus the document-starts bitvector."""
        starts_bits = self._starts.size_in_bits() if self._starts else 0
        return self._fm.size_in_bits() + starts_bits
