"""Append-only access-log store with time-window analytics.

This is the paper's flagship scenario: URLs (or any hierarchical references)
are appended in chronological order; a time window corresponds to a position
range; and the analytics -- "most accessed domain during winter vacation",
per-prefix counts, distinct hosts -- map directly onto the Wavelet Trie's
``RankPrefix``/``SelectPrefix`` and the Section 5 range algorithms.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterable, List, Optional, Tuple

from repro.core.append_only import AppendOnlyWaveletTrie
from repro.exceptions import OutOfBoundsError

__all__ = ["AccessLogStore"]


class AccessLogStore:
    """Chronological log of accessed URLs/paths with windowed analytics.

    Entries are appended with a non-decreasing integer timestamp (epoch
    seconds, a tick counter, ...).  Time windows are translated to position
    ranges with a sorted timestamp array, and every analytic runs on the
    compressed index.
    """

    def __init__(self) -> None:
        self._index = AppendOnlyWaveletTrie()
        self._timestamps: List[int] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def append(self, url: str, timestamp: Optional[int] = None) -> None:
        """Record one access; ``timestamp`` must be non-decreasing (defaults to a tick)."""
        if timestamp is None:
            timestamp = self._timestamps[-1] + 1 if self._timestamps else 0
        if self._timestamps and timestamp < self._timestamps[-1]:
            raise ValueError("timestamps must be non-decreasing")
        self._index.append(url)
        self._timestamps.append(timestamp)

    def extend(self, entries: Iterable[Tuple[int, str]]) -> None:
        """Append ``(timestamp, url)`` pairs in order."""
        for timestamp, url in entries:
            self.append(url, timestamp)

    # ------------------------------------------------------------------
    def window(self, start_time: int, end_time: int) -> Tuple[int, int]:
        """Translate a time window ``[start_time, end_time)`` into a position range."""
        low = bisect_left(self._timestamps, start_time)
        high = bisect_left(self._timestamps, end_time)
        return low, high

    def entry(self, position: int) -> Tuple[int, str]:
        """The ``(timestamp, url)`` pair at a log position."""
        if not 0 <= position < len(self._timestamps):
            raise OutOfBoundsError(f"position {position} out of range")
        return self._timestamps[position], self._index.access(position)

    # ------------------------------------------------------------------
    # Analytics (all windowed)
    # ------------------------------------------------------------------
    def count_prefix(self, prefix: str, start_time: int, end_time: int) -> int:
        """Accesses under ``prefix`` (domain, folder, ...) during the window."""
        low, high = self.window(start_time, end_time)
        return self._index.range_count_prefix(prefix, low, high)

    def count_url(self, url: str, start_time: int, end_time: int) -> int:
        """Accesses to exactly ``url`` during the window."""
        low, high = self.window(start_time, end_time)
        return self._index.range_count(url, low, high)

    def top_urls(self, k: int, start_time: int, end_time: int, prefix: Optional[str] = None) -> List[Tuple[str, int]]:
        """The ``k`` most accessed URLs during the window (optionally under a prefix)."""
        low, high = self.window(start_time, end_time)
        if low >= high:
            return []
        return self._index.top_k_in_range(low, high, k, prefix)

    def distinct_urls(self, start_time: int, end_time: int, prefix: Optional[str] = None) -> List[Tuple[str, int]]:
        """Distinct URLs (with counts) accessed during the window."""
        low, high = self.window(start_time, end_time)
        if low >= high:
            return []
        return self._index.distinct_in_range(low, high, prefix)

    def majority_url(self, start_time: int, end_time: int, prefix: Optional[str] = None) -> Optional[Tuple[str, int]]:
        """The URL accounting for more than half the window's accesses, if any."""
        low, high = self.window(start_time, end_time)
        if low >= high:
            return None
        return self._index.range_majority(low, high, prefix)

    def accesses_under(self, prefix: str, start_time: int, end_time: int, limit: Optional[int] = None) -> List[Tuple[int, str]]:
        """The individual accesses under ``prefix`` during the window (time, url)."""
        low, high = self.window(start_time, end_time)
        total = self._index.rank_prefix(prefix, high) - self._index.rank_prefix(prefix, low)
        if limit is not None:
            total = min(total, limit)
        out: List[Tuple[int, str]] = []
        skip = self._index.rank_prefix(prefix, low)
        for idx in range(total):
            position = self._index.select_prefix(prefix, skip + idx)
            out.append((self._timestamps[position], self._index.access(position)))
        return out

    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Measured size of the compressed index (timestamps excluded)."""
        return self._index.size_in_bits()
