"""A single compressed, indexed column.

``CompressedColumn`` wraps one Wavelet Trie and exposes the vocabulary a
database developer expects: value access, equality and prefix filters
(returning row positions), counts, distinct values and per-range group-by.
The column can be *static* (bulk loaded, most compact), *appendable*
(rows arrive over time, the log/OLTP case) or *tiered* (the LSM composition
of :mod:`repro.core.tiers`: sustained writes absorbed by a small mutable
tail with budgeted background compaction into frozen RRR tiers); all
support the same reads.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Tuple

from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.static import WaveletTrie
from repro.core.tiers import TieredWaveletTrie
from repro.exceptions import InvalidOperationError
from repro.tries.binarize import StringCodec

__all__ = ["CompressedColumn"]


class CompressedColumn:
    """One named, compressed, indexed column of string values."""

    def __init__(
        self,
        name: str,
        values: Iterable[Any] = (),
        appendable: bool = True,
        codec: Optional[StringCodec] = None,
        tiered: bool = False,
    ) -> None:
        self.name = name
        if tiered:
            self._appendable = True
            self._index = TieredWaveletTrie(values, codec=codec)
        elif appendable:
            self._appendable = True
            self._index = AppendOnlyWaveletTrie(values, codec=codec)
        else:
            self._appendable = False
            self._index = WaveletTrie(values, codec=codec)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    @property
    def appendable(self) -> bool:
        """True if rows can still be appended."""
        return self._appendable

    @property
    def index(self):
        """The underlying Wavelet Trie (for advanced queries)."""
        return self._index

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def append(self, value: Any) -> None:
        """Append one value (one new row) at the end of the column."""
        if not self._appendable:
            raise InvalidOperationError(
                f"column {self.name!r} was loaded statically and cannot grow"
            )
        self._index.append(value)

    def extend(self, values: Iterable[Any]) -> None:
        """Append many values (the index's bulk path: one buffered descent
        per distinct key, and budgeted compaction for tiered columns)."""
        if not self._appendable:
            raise InvalidOperationError(
                f"column {self.name!r} was loaded statically and cannot grow"
            )
        self._index.extend(values)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def value_at(self, row: int) -> Any:
        """The value stored at row ``row``."""
        return self._index.access(row)

    def count_eq(self, value: Any, end_row: Optional[int] = None) -> int:
        """Rows equal to ``value`` among the first ``end_row`` rows (default all)."""
        end_row = len(self._index) if end_row is None else end_row
        return self._index.rank(value, end_row)

    def count_prefix(self, prefix: Any, end_row: Optional[int] = None) -> int:
        """Rows whose value starts with ``prefix`` among the first ``end_row`` rows."""
        end_row = len(self._index) if end_row is None else end_row
        return self._index.rank_prefix(prefix, end_row)

    def rows_eq(self, value: Any, limit: Optional[int] = None) -> Iterator[int]:
        """Row positions holding exactly ``value`` (ascending), up to ``limit``."""
        total = self._index.count(value)
        if limit is not None:
            total = min(total, limit)
        for idx in range(total):
            yield self._index.select(value, idx)

    def rows_prefix(self, prefix: Any, limit: Optional[int] = None) -> Iterator[int]:
        """Row positions whose value starts with ``prefix`` (ascending)."""
        total = self._index.count_prefix(prefix)
        if limit is not None:
            total = min(total, limit)
        for idx in range(total):
            yield self._index.select_prefix(prefix, idx)

    def distinct(self, start: int = 0, stop: Optional[int] = None) -> List[Tuple[Any, int]]:
        """Distinct values (with counts) in the row range ``[start, stop)``."""
        stop = len(self._index) if stop is None else stop
        return self._index.distinct_in_range(start, stop)

    def group_by_count(
        self, start: int = 0, stop: Optional[int] = None, prefix: Any = None
    ) -> List[Tuple[Any, int]]:
        """GROUP BY value with COUNT(*), restricted to a row range and optional prefix."""
        stop = len(self._index) if stop is None else stop
        return self._index.distinct_in_range(start, stop, prefix)

    def top_values(
        self, k: int, start: int = 0, stop: Optional[int] = None, prefix: Any = None
    ) -> List[Tuple[Any, int]]:
        """The ``k`` most frequent values in a row range."""
        stop = len(self._index) if stop is None else stop
        return self._index.top_k_in_range(start, stop, k, prefix)

    def values(self, start: int = 0, stop: Optional[int] = None) -> Iterator[Any]:
        """Scan the column values in row order."""
        stop = len(self._index) if stop is None else stop
        return self._index.iter_range(start, stop)

    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Measured size of the column's compressed index."""
        return self._index.size_in_bits()
