"""A single compressed, indexed column.

``CompressedColumn`` wraps one Wavelet Trie and exposes the vocabulary a
database developer expects: value access, equality and prefix filters
(returning row positions), counts, distinct values and per-range group-by.
The column can be *static* (bulk loaded, most compact), *appendable*
(rows arrive over time, the log/OLTP case) or *tiered* (the LSM composition
of :mod:`repro.core.tiers`: sustained writes absorbed by a small mutable
tail with budgeted background compaction into frozen RRR tiers); all
support the same reads.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.interface import (
    IndexedStringSequence,
    check_select_prefix_index,
    validate_select_prefix_indexes,
)
from repro.core.static import WaveletTrie
from repro.core.tiers import TieredWaveletTrie
from repro.exceptions import InvalidOperationError, OutOfBoundsError, ValueNotFoundError
from repro.tries.binarize import StringCodec

__all__ = ["ColumnSnapshot", "CompressedColumn"]


class ColumnSnapshot(IndexedStringSequence):
    """A read-only view of a column pinned at a fixed row count.

    The snapshot shares the column's index -- creating one is O(1) and copies
    nothing -- and answers every read as of the pinned length ``version``:
    positions are validated against the pinned length, ranks are taken at
    clamped positions, and select indexes are validated against the
    occurrence count *within the pinned prefix*, which for an append-only
    column guarantees the answer never observes a row appended after the pin
    (row ``i < version`` is immutable, and the ``idx``-th occurrence for
    ``idx < rank(value, version)`` lies below ``version``).

    This is the single-writer/many-reader primitive the serving layer builds
    on: the writer keeps appending to (and compacting) the live index while
    readers hold a consistent frozen view, with no cross-tier copying --
    compaction only changes the physical tier layout, never the logical
    prefix a snapshot pins.  The handle is only sound under the column's
    append-only mutation discipline; structures mutated in the middle
    (:class:`~repro.core.dynamic.DynamicWaveletTrie` used directly) shift
    positions and need a real frozen copy instead
    (:meth:`~repro.core.tiers.TieredWaveletTrie.frozen_snapshot`).
    """

    def __init__(self, index: Any, version: Optional[int] = None) -> None:
        size = len(index)
        if version is None:
            version = size
        if not 0 <= version <= size:
            raise OutOfBoundsError(
                f"snapshot version {version} out of range for length {size}"
            )
        self._index = index
        self._version = version

    @property
    def version(self) -> int:
        """The pinned row count (also the snapshot's logical length)."""
        return self._version

    def is_current(self) -> bool:
        """True while no row has been appended since the pin."""
        return len(self._index) == self._version

    # ------------------------------------------------------------------
    # Scalar reads, all answered as of the pinned prefix
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._version

    def _check_position(self, pos: int) -> None:
        if not 0 <= pos < self._version:
            raise OutOfBoundsError(
                f"position {pos} out of range for length {self._version}"
            )

    def _check_rank_pos(self, pos: int) -> None:
        if not 0 <= pos <= self._version:
            raise OutOfBoundsError(
                f"rank position {pos} out of range for length {self._version}"
            )

    def access(self, pos: int) -> Any:
        """Value at ``pos`` as of the pin (rows below ``version`` are immutable)."""
        self._check_position(pos)
        return self._index.access(pos)

    def rank(self, value: Any, pos: int) -> int:
        """Occurrences of ``value`` in the pinned prefix ``[0, pos)``."""
        self._check_rank_pos(pos)
        return self._index.rank(value, pos)

    def select(self, value: Any, idx: int) -> int:
        """Position of the ``idx``-th occurrence within the pinned prefix."""
        if idx < 0:
            raise OutOfBoundsError("select index must be non-negative")
        total = self._index.rank(value, self._version)
        if total == 0:
            raise ValueNotFoundError(
                f"value {value!r} does not occur in the sequence"
            )
        if idx >= total:
            raise OutOfBoundsError(
                f"select index {idx} out of range: only {total} occurrences"
            )
        return self._index.select(value, idx)

    def rank_prefix(self, prefix: Any, pos: int) -> int:
        """Prefix matches in the pinned prefix ``[0, pos)``."""
        self._check_rank_pos(pos)
        return self._index.rank_prefix(prefix, pos)

    def select_prefix(self, prefix: Any, idx: int) -> int:
        """Position of the ``idx``-th prefix match within the pinned prefix."""
        matches = self._index.rank_prefix(prefix, self._version)
        if matches == 0:
            raise ValueNotFoundError(f"no element has prefix {prefix!r}")
        check_select_prefix_index(prefix, idx, matches)
        return self._index.select_prefix(prefix, idx)

    # ------------------------------------------------------------------
    # Batch reads: validate against the pin, then one delegated batch walk
    # ------------------------------------------------------------------
    def access_many(self, positions: Sequence[int]) -> List[Any]:
        """Values at each position; amortised by the index's one batch walk
        after an O(q) pin check."""
        positions = [int(pos) for pos in positions]
        for pos in positions:
            self._check_position(pos)
        return self._index.access_many(positions)

    def rank_many(self, value: Any, positions: Sequence[int]) -> List[int]:
        """Rank at each position; amortised by the index's one batch walk
        after an O(q) pin check."""
        positions = [int(pos) for pos in positions]
        for pos in positions:
            self._check_rank_pos(pos)
        return self._index.rank_many(value, positions)

    def select_many(self, value: Any, indexes: Sequence[int]) -> List[int]:
        """Positions of the requested occurrences; amortised by the index's
        one batch walk after one pinned-count rank + O(q) validation."""
        indexes = [int(idx) for idx in indexes]
        if not indexes:
            return []
        total = self._index.rank(value, self._version)
        if total == 0:
            raise ValueNotFoundError(
                f"value {value!r} does not occur in the sequence"
            )
        for idx in indexes:
            if not 0 <= idx < total:
                raise OutOfBoundsError(
                    f"select index {idx} out of range: only {total} occurrences"
                )
        return self._index.select_many(value, indexes)

    def rank_prefix_many(self, prefix: Any, positions: Sequence[int]) -> List[int]:
        """Prefix rank at each position; amortised by the index's one batch
        walk after an O(q) pin check."""
        positions = [int(pos) for pos in positions]
        for pos in positions:
            self._check_rank_pos(pos)
        return self._index.rank_prefix_many(prefix, positions)

    def select_prefix_many(self, prefix: Any, indexes: Sequence[int]) -> List[int]:
        """Positions of the requested prefix matches; amortised by the
        index's one batch walk after one pinned-count rank + O(q) validation."""
        indexes = [int(idx) for idx in indexes]
        if not indexes:
            return []
        matches = self._index.rank_prefix(prefix, self._version)
        if matches == 0:
            raise ValueNotFoundError(f"no element has prefix {prefix!r}")
        indexes = validate_select_prefix_indexes(indexes, matches, prefix)
        return self._index.select_prefix_many(prefix, indexes)

    # ------------------------------------------------------------------
    def iter_range(self, start: int, stop: int) -> Iterator[Any]:
        """Rows ``[start, stop)`` of the pinned prefix, in row order."""
        if not (0 <= start <= stop <= self._version):
            raise OutOfBoundsError(
                f"range [{start}, {stop}) invalid for sequence of length "
                f"{self._version}"
            )
        return self._index.iter_range(start, stop)

    def size_in_bits(self) -> int:
        """Footprint of the shared index (the snapshot itself owns nothing)."""
        return self._index.size_in_bits()


class CompressedColumn:
    """One named, compressed, indexed column of string values."""

    def __init__(
        self,
        name: str,
        values: Iterable[Any] = (),
        appendable: bool = True,
        codec: Optional[StringCodec] = None,
        tiered: bool = False,
    ) -> None:
        self.name = name
        if tiered:
            self._appendable = True
            self._index = TieredWaveletTrie(values, codec=codec)
        elif appendable:
            self._appendable = True
            self._index = AppendOnlyWaveletTrie(values, codec=codec)
        else:
            self._appendable = False
            self._index = WaveletTrie(values, codec=codec)

    @classmethod
    def from_index(
        cls, name: str, index: Any, appendable: Optional[bool] = None
    ) -> "CompressedColumn":
        """Wrap an existing Wavelet Trie as a column (shares it, copies nothing).

        This is how a persisted index (``repro.storage.load``) becomes
        servable: the CLI ``serve`` command loads the file and wraps it.
        ``appendable`` defaults to whatever the index supports.
        """
        column = cls.__new__(cls)
        column.name = name
        if appendable is None:
            appendable = hasattr(index, "append")
        column._appendable = bool(appendable)
        column._index = index
        return column

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    @property
    def appendable(self) -> bool:
        """True if rows can still be appended."""
        return self._appendable

    @property
    def index(self):
        """The underlying Wavelet Trie (for advanced queries)."""
        return self._index

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def append(self, value: Any) -> None:
        """Append one value (one new row) at the end of the column."""
        if not self._appendable:
            raise InvalidOperationError(
                f"column {self.name!r} was loaded statically and cannot grow"
            )
        self._index.append(value)

    def extend(self, values: Iterable[Any]) -> None:
        """Append many values (the index's bulk path: one buffered descent
        per distinct key, and budgeted compaction for tiered columns)."""
        if not self._appendable:
            raise InvalidOperationError(
                f"column {self.name!r} was loaded statically and cannot grow"
            )
        self._index.extend(values)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> ColumnSnapshot:
        """A read-only view pinned at the current row count, in O(1).

        The snapshot shares the index: later :meth:`append`/:meth:`extend`
        calls (and tiered compaction) do not change any answer it gives.
        This is the read side of the serving layer's single-writer rule.
        """
        return ColumnSnapshot(self._index)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def value_at(self, row: int) -> Any:
        """The value stored at row ``row``."""
        return self._index.access(row)

    def count_eq(self, value: Any, end_row: Optional[int] = None) -> int:
        """Rows equal to ``value`` among the first ``end_row`` rows (default all)."""
        end_row = len(self._index) if end_row is None else end_row
        return self._index.rank(value, end_row)

    def count_prefix(self, prefix: Any, end_row: Optional[int] = None) -> int:
        """Rows whose value starts with ``prefix`` among the first ``end_row`` rows."""
        end_row = len(self._index) if end_row is None else end_row
        return self._index.rank_prefix(prefix, end_row)

    def rows_eq(self, value: Any, limit: Optional[int] = None) -> Iterator[int]:
        """Row positions holding exactly ``value`` (ascending), up to ``limit``."""
        total = self._index.count(value)
        if limit is not None:
            total = min(total, limit)
        for idx in range(total):
            yield self._index.select(value, idx)

    def rows_prefix(self, prefix: Any, limit: Optional[int] = None) -> Iterator[int]:
        """Row positions whose value starts with ``prefix`` (ascending)."""
        total = self._index.count_prefix(prefix)
        if limit is not None:
            total = min(total, limit)
        for idx in range(total):
            yield self._index.select_prefix(prefix, idx)

    def distinct(self, start: int = 0, stop: Optional[int] = None) -> List[Tuple[Any, int]]:
        """Distinct values (with counts) in the row range ``[start, stop)``."""
        stop = len(self._index) if stop is None else stop
        return self._index.distinct_in_range(start, stop)

    def group_by_count(
        self, start: int = 0, stop: Optional[int] = None, prefix: Any = None
    ) -> List[Tuple[Any, int]]:
        """GROUP BY value with COUNT(*), restricted to a row range and optional prefix."""
        stop = len(self._index) if stop is None else stop
        return self._index.distinct_in_range(start, stop, prefix)

    def top_values(
        self, k: int, start: int = 0, stop: Optional[int] = None, prefix: Any = None
    ) -> List[Tuple[Any, int]]:
        """The ``k`` most frequent values in a row range."""
        stop = len(self._index) if stop is None else stop
        return self._index.top_k_in_range(start, stop, k, prefix)

    def values(self, start: int = 0, stop: Optional[int] = None) -> Iterator[Any]:
        """Scan the column values in row order."""
        stop = len(self._index) if stop is None else stop
        return self._index.iter_range(start, stop)

    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Measured size of the column's compressed index."""
        return self._index.size_in_bits()
