"""Temporal graph store: an evolving binary relation indexed by the Wavelet Trie.

The paper's introduction motivates the data structure with web graphs and
social networks: "edges can change over time, so we can report what changed in
the adjacency list of a given vertex in a given time frame, allowing us to
produce snapshots on the fly".  This module turns that paragraph into an
application-level store:

* edge *additions* and *removals* are appended chronologically to two
  append-only Wavelet Tries, each edge rendered as the string
  ``"<source> -> <target>"``;
* a time window maps to a position range in each log (binary search over the
  non-decreasing timestamps);
* adjacency snapshots, adjacency deltas, degrees and per-window activity are
  all answered with ``RankPrefix`` and the Section 5 range analytics over the
  vertex prefix ``"<source> ->"`` -- no adjacency lists are ever materialised.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

from repro.core.append_only import AppendOnlyWaveletTrie
from repro.exceptions import InvalidOperationError
from repro.tries.binarize import StringCodec

__all__ = ["TemporalGraphStore"]

_SEPARATOR = " -> "


class TemporalGraphStore:
    """Chronological store of edge additions/removals with on-the-fly snapshots.

    Parameters
    ----------
    check_consistency:
        When True (default), removing an edge that is not currently present
        raises :class:`~repro.exceptions.InvalidOperationError`; when False
        the removal is recorded anyway (useful when replaying possibly noisy
        logs).
    codec:
        Codec for the edge strings (UTF-8 by default).

    Examples
    --------
    >>> graph = TemporalGraphStore()
    >>> graph.add_edge("alice", "bob", timestamp=1)
    >>> graph.add_edge("alice", "carol", timestamp=2)
    >>> graph.remove_edge("alice", "bob", timestamp=5)
    >>> graph.neighbors_at("alice", 3)
    ['bob', 'carol']
    >>> graph.neighbors_at("alice", 10)
    ['carol']
    """

    def __init__(
        self,
        check_consistency: bool = True,
        codec: Optional[StringCodec] = None,
    ) -> None:
        self._additions = AppendOnlyWaveletTrie(codec=codec)
        self._removals = AppendOnlyWaveletTrie(codec=codec)
        self._addition_times: List[int] = []
        self._removal_times: List[int] = []
        self._check_consistency = check_consistency
        self._last_timestamp: Optional[int] = None

    # ------------------------------------------------------------------
    # Encoding helpers
    # ------------------------------------------------------------------
    @staticmethod
    def edge_key(source: str, target: str) -> str:
        """The string under which an edge is indexed."""
        return f"{source}{_SEPARATOR}{target}"

    @staticmethod
    def vertex_prefix(source: str) -> str:
        """The prefix matching every edge leaving ``source``."""
        return f"{source}{_SEPARATOR}"

    @staticmethod
    def split_edge_key(key: str) -> Tuple[str, str]:
        """Inverse of :meth:`edge_key`."""
        source, _, target = key.partition(_SEPARATOR)
        return source, target

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Total number of recorded events (additions plus removals)."""
        return len(self._additions) + len(self._removals)

    @property
    def addition_count(self) -> int:
        """Number of edge-addition events."""
        return len(self._additions)

    @property
    def removal_count(self) -> int:
        """Number of edge-removal events."""
        return len(self._removals)

    def add_edge(self, source: str, target: str, timestamp: Optional[int] = None) -> None:
        """Record that the edge ``source -> target`` was added at ``timestamp``."""
        timestamp = self._next_timestamp(timestamp)
        self._additions.append(self.edge_key(source, target))
        self._addition_times.append(timestamp)

    def remove_edge(self, source: str, target: str, timestamp: Optional[int] = None) -> None:
        """Record that the edge ``source -> target`` was removed at ``timestamp``."""
        timestamp = self._next_timestamp(timestamp)
        if self._check_consistency:
            if self.edge_multiplicity(source, target, timestamp + 1) <= 0:
                raise InvalidOperationError(
                    f"edge {source!r} -> {target!r} is not present at time {timestamp}"
                )
        self._removals.append(self.edge_key(source, target))
        self._removal_times.append(timestamp)

    def _next_timestamp(self, timestamp: Optional[int]) -> int:
        if timestamp is None:
            timestamp = 0 if self._last_timestamp is None else self._last_timestamp + 1
        if self._last_timestamp is not None and timestamp < self._last_timestamp:
            raise ValueError("timestamps must be non-decreasing")
        self._last_timestamp = timestamp
        return timestamp

    # ------------------------------------------------------------------
    # Time windows
    # ------------------------------------------------------------------
    def _addition_window(self, start_time: int, end_time: int) -> Tuple[int, int]:
        return (
            bisect_left(self._addition_times, start_time),
            bisect_left(self._addition_times, end_time),
        )

    def _removal_window(self, start_time: int, end_time: int) -> Tuple[int, int]:
        return (
            bisect_left(self._removal_times, start_time),
            bisect_left(self._removal_times, end_time),
        )

    # ------------------------------------------------------------------
    # Snapshots and deltas
    # ------------------------------------------------------------------
    def edge_multiplicity(self, source: str, target: str, as_of: int) -> int:
        """Additions minus removals of the edge strictly before time ``as_of``.

        For a simple graph this is 0 or 1; multigraphs may return larger
        values.
        """
        key = self.edge_key(source, target)
        _, add_hi = self._addition_window(0, as_of)
        _, remove_hi = self._removal_window(0, as_of)
        added = self._additions.rank(key, add_hi)
        removed = self._removals.rank(key, remove_hi)
        return added - removed

    def has_edge(self, source: str, target: str, as_of: int) -> bool:
        """True if the edge is present in the snapshot at time ``as_of``."""
        return self.edge_multiplicity(source, target, as_of) > 0

    def neighbors_at(self, source: str, as_of: int) -> List[str]:
        """The adjacency list of ``source`` in the snapshot at time ``as_of``."""
        return sorted(self._live_neighbor_counts(source, as_of))

    def degree_at(self, source: str, as_of: int) -> int:
        """Out-degree of ``source`` in the snapshot at time ``as_of``."""
        return len(self._live_neighbor_counts(source, as_of))

    def _live_neighbor_counts(self, source: str, as_of: int) -> Dict[str, int]:
        """Net multiplicity per neighbour (only strictly positive entries)."""
        prefix = self.vertex_prefix(source)
        counts: Dict[str, int] = {}
        add_lo, add_hi = self._addition_window(0, as_of)
        if add_hi > add_lo:
            for key, count in self._additions.distinct_in_range(add_lo, add_hi, prefix):
                _, target = self.split_edge_key(key)
                counts[target] = counts.get(target, 0) + count
        remove_lo, remove_hi = self._removal_window(0, as_of)
        if remove_hi > remove_lo:
            for key, count in self._removals.distinct_in_range(remove_lo, remove_hi, prefix):
                _, target = self.split_edge_key(key)
                counts[target] = counts.get(target, 0) - count
        return {target: count for target, count in counts.items() if count > 0}

    def adjacency_changes(
        self, source: str, start_time: int, end_time: int
    ) -> Dict[str, int]:
        """Net adjacency change of ``source`` during ``[start_time, end_time)``.

        Returns ``{target: delta}`` where ``delta > 0`` means the edge gained
        multiplicity during the window and ``delta < 0`` means it lost;
        neighbours whose additions and removals cancel out are omitted.  This
        is the paper's "how did friendship links change during winter
        vacation" query.
        """
        prefix = self.vertex_prefix(source)
        deltas: Dict[str, int] = {}
        add_lo, add_hi = self._addition_window(start_time, end_time)
        if add_hi > add_lo:
            for key, count in self._additions.distinct_in_range(add_lo, add_hi, prefix):
                _, target = self.split_edge_key(key)
                deltas[target] = deltas.get(target, 0) + count
        remove_lo, remove_hi = self._removal_window(start_time, end_time)
        if remove_hi > remove_lo:
            for key, count in self._removals.distinct_in_range(remove_lo, remove_hi, prefix):
                _, target = self.split_edge_key(key)
                deltas[target] = deltas.get(target, 0) - count
        return {target: delta for target, delta in deltas.items() if delta != 0}

    def activity(self, source: str, start_time: int, end_time: int) -> int:
        """Number of events (additions + removals) touching ``source`` in the window."""
        prefix = self.vertex_prefix(source)
        add_lo, add_hi = self._addition_window(start_time, end_time)
        remove_lo, remove_hi = self._removal_window(start_time, end_time)
        return (
            self._additions.range_count_prefix(prefix, add_lo, add_hi)
            + self._removals.range_count_prefix(prefix, remove_lo, remove_hi)
        )

    def top_edges(
        self, k: int, start_time: int, end_time: int, source: Optional[str] = None
    ) -> List[Tuple[str, int]]:
        """The ``k`` most frequently added edges during the window.

        With ``source`` the search is restricted to edges leaving that vertex
        (using the prefix-restricted top-k of Section 5).
        """
        lo, hi = self._addition_window(start_time, end_time)
        if lo >= hi:
            return []
        prefix = self.vertex_prefix(source) if source is not None else None
        return self._additions.top_k_in_range(lo, hi, k, prefix)

    def active_vertices(
        self, start_time: int, end_time: int
    ) -> List[Tuple[str, int]]:
        """Vertices ordered by number of addition events they originate in the window."""
        lo, hi = self._addition_window(start_time, end_time)
        if lo >= hi:
            return []
        totals: Dict[str, int] = {}
        for key, count in self._additions.distinct_in_range(lo, hi):
            source, _ = self.split_edge_key(key)
            totals[source] = totals.get(source, 0) + count
        return sorted(totals.items(), key=lambda item: (-item[1], item[0]))

    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Measured size of the two compressed event logs (timestamps excluded)."""
        return self._additions.size_in_bits() + self._removals.size_in_bits()
