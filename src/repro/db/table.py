"""A minimal column-store table.

``ColumnStore`` keeps one :class:`~repro.db.column.CompressedColumn` per
attribute, rows are appended as dictionaries, and filters are expressed per
column (equality or prefix) and combined by intersecting row-position sets --
the textbook column-store evaluation strategy, here running entirely on
compressed indexes.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.db.column import CompressedColumn
from repro.exceptions import InvalidOperationError, OutOfBoundsError

__all__ = ["ColumnStore"]


class ColumnStore:
    """A table of compressed columns with append and filter operations."""

    def __init__(self, column_names: Sequence[str]) -> None:
        if not column_names:
            raise ValueError("a table needs at least one column")
        if len(set(column_names)) != len(column_names):
            raise ValueError("duplicate column names")
        self._columns: Dict[str, CompressedColumn] = {
            name: CompressedColumn(name) for name in column_names
        }
        self._row_count = 0

    # ------------------------------------------------------------------
    @property
    def column_names(self) -> List[str]:
        """The table schema, in declaration order."""
        return list(self._columns)

    def column(self, name: str) -> CompressedColumn:
        """The column object for ``name``."""
        try:
            return self._columns[name]
        except KeyError:
            raise InvalidOperationError(f"no column named {name!r}") from None

    def __len__(self) -> int:
        return self._row_count

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def append_row(self, row: Dict[str, Any]) -> int:
        """Append one row (a dict with a value for every column); returns its position."""
        missing = set(self._columns) - set(row)
        if missing:
            raise InvalidOperationError(
                f"row is missing values for columns: {sorted(missing)}"
            )
        for name, column in self._columns.items():
            column.append(row[name])
        position = self._row_count
        self._row_count += 1
        return position

    def extend(self, rows: Iterable[Dict[str, Any]]) -> None:
        """Append many rows."""
        for row in rows:
            self.append_row(row)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def row(self, position: int) -> Dict[str, Any]:
        """Materialise the row at ``position``."""
        if not 0 <= position < self._row_count:
            raise OutOfBoundsError(f"row {position} out of range")
        return {name: column.value_at(position) for name, column in self._columns.items()}

    def filter_eq(self, column: str, value: Any) -> List[int]:
        """Row positions where ``column == value``."""
        return list(self.column(column).rows_eq(value))

    def filter_prefix(self, column: str, prefix: Any) -> List[int]:
        """Row positions where ``column`` starts with ``prefix``."""
        return list(self.column(column).rows_prefix(prefix))

    def filter(self, conditions: Dict[str, Any], prefixes: Optional[Dict[str, Any]] = None) -> List[int]:
        """Row positions satisfying all equality ``conditions`` and prefix ``prefixes``.

        Evaluation starts from the most selective column (smallest count) and
        verifies the remaining predicates by point lookups -- the standard
        column-store strategy.
        """
        prefixes = prefixes or {}
        if not conditions and not prefixes:
            return list(range(self._row_count))
        # Estimate selectivity of every predicate.
        candidates: List[tuple] = []
        for name, value in conditions.items():
            candidates.append((self.column(name).count_eq(value), "eq", name, value))
        for name, prefix in prefixes.items():
            candidates.append((self.column(name).count_prefix(prefix), "prefix", name, prefix))
        candidates.sort()
        count, kind, name, value = candidates[0]
        if count == 0:
            return []
        if kind == "eq":
            positions: Iterable[int] = self.column(name).rows_eq(value)
        else:
            positions = self.column(name).rows_prefix(value)
        survivors: List[int] = []
        for position in positions:
            keep = True
            for other_name, other_value in conditions.items():
                if other_name == name and kind == "eq":
                    continue
                if self.column(other_name).value_at(position) != other_value:
                    keep = False
                    break
            if keep:
                for other_name, other_prefix in prefixes.items():
                    if other_name == name and kind == "prefix":
                        continue
                    if not self.column(other_name).value_at(position).startswith(other_prefix):
                        keep = False
                        break
            if keep:
                survivors.append(position)
        return survivors

    def count_where(self, conditions: Dict[str, Any], prefixes: Optional[Dict[str, Any]] = None) -> int:
        """COUNT(*) under the same predicate semantics as :meth:`filter`."""
        if conditions or (prefixes and len(prefixes) > 1):
            return len(self.filter(conditions, prefixes))
        if prefixes:
            (name, prefix), = prefixes.items()
            return self.column(name).count_prefix(prefix)
        return self._row_count

    def project(self, positions: Iterable[int], columns: Optional[Sequence[str]] = None) -> List[Dict[str, Any]]:
        """Materialise the given rows, optionally restricted to some columns."""
        columns = list(columns) if columns is not None else self.column_names
        rows = []
        for position in positions:
            rows.append({name: self.column(name).value_at(position) for name in columns})
        return rows

    def group_by_count(self, column: str, start: int = 0, stop: Optional[int] = None) -> List[tuple]:
        """GROUP BY ``column`` with COUNT(*) over a row range."""
        return self.column(column).group_by_count(start, stop)

    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Total measured size of all column indexes."""
        return sum(column.size_in_bits() for column in self._columns.values())
