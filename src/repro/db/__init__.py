"""Column-store and log-analytics layer built on the Wavelet Trie.

The paper motivates the compressed indexed sequence of strings with
column-oriented databases and log processing.  This package provides the thin
application layer that turns the Wavelet Trie primitives into those use
cases:

* :class:`~repro.db.column.CompressedColumn` -- one column, static or
  append-only, with equality/prefix filters and per-range statistics;
* :class:`~repro.db.table.ColumnStore` -- a table of named columns with
  row-level append and multi-column filters;
* :class:`~repro.db.query.Query` / :class:`~repro.db.query.Predicate` -- a
  fluent conjunctive query layer (selectivity-ordered plans, limit pushdown,
  EXPLAIN) over a :class:`ColumnStore`;
* :class:`~repro.db.log_store.AccessLogStore` -- an append-only access log
  with time-window analytics (top domains, counts per prefix, majority);
* :class:`~repro.db.graph_store.TemporalGraphStore` -- an evolving binary
  relation (the paper's social-network example) with on-the-fly adjacency
  snapshots and per-window deltas;
* :mod:`repro.db.partition` -- position-range partitioning of columns for
  the multi-process serving cluster (balanced ranges, shard slicing);
* :class:`~repro.db.doc_store.DocumentStore` -- FM-index-backed full-text
  substring search (count/locate/extract) over a collection of documents.
"""

from repro.db.column import ColumnSnapshot, CompressedColumn
from repro.db.doc_store import DocumentStore
from repro.db.graph_store import TemporalGraphStore
from repro.db.log_store import AccessLogStore
from repro.db.partition import as_column_dict, partition_ranges, slice_column
from repro.db.query import Predicate, Query
from repro.db.table import ColumnStore

__all__ = [
    "AccessLogStore",
    "ColumnSnapshot",
    "ColumnStore",
    "CompressedColumn",
    "DocumentStore",
    "Predicate",
    "Query",
    "TemporalGraphStore",
    "as_column_dict",
    "partition_ranges",
    "slice_column",
]
