"""A small declarative query layer over :class:`~repro.db.table.ColumnStore`.

``ColumnStore.filter`` answers one-shot conjunctive filters; this module adds
the pieces a database developer reaches for next -- composable predicates, a
fluent builder, row-range (time-window) restriction, limit pushdown, grouping
and a textual ``EXPLAIN`` -- while still executing everything on the
compressed column indexes:

>>> from repro.db import ColumnStore
>>> from repro.db.query import Query
>>> store = ColumnStore(["url", "status"])
>>> _ = store.append_row({"url": "/cart", "status": "200"})
>>> _ = store.append_row({"url": "/admin/panel", "status": "403"})
>>> _ = store.append_row({"url": "/cart", "status": "200"})
>>> Query(store).where_eq("url", "/cart").count()
2
>>> Query(store).where_prefix("url", "/admin").rows()
[{'url': '/admin/panel', 'status': '403'}]

Evaluation strategy (the classic column-store plan): the most selective
predicate drives the scan through ``Select``/``SelectPrefix`` on its column,
the remaining predicates are verified with per-row ``Access`` lookups, and the
limit stops the scan as soon as enough rows survive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.db.table import ColumnStore
from repro.exceptions import InvalidOperationError

__all__ = ["Predicate", "Query", "QueryPlan"]


@dataclass(frozen=True)
class Predicate:
    """One predicate on one column; build with the class methods."""

    column: str
    kind: str  # "eq", "prefix" or "in"
    value: Any

    @classmethod
    def eq(cls, column: str, value: Any) -> "Predicate":
        """``column == value``."""
        return cls(column, "eq", value)

    @classmethod
    def prefix(cls, column: str, value: Any) -> "Predicate":
        """``column`` starts with ``value``."""
        return cls(column, "prefix", value)

    @classmethod
    def is_in(cls, column: str, values: Sequence[Any]) -> "Predicate":
        """``column`` is one of ``values``."""
        return cls(column, "in", tuple(values))

    # ------------------------------------------------------------------
    def selectivity(self, store: ColumnStore, start: int, stop: int) -> int:
        """Estimated number of matching rows in ``[start, stop)`` (exact for this index)."""
        column = store.column(self.column)
        if self.kind == "eq":
            return column.index.rank(self.value, stop) - column.index.rank(self.value, start)
        if self.kind == "prefix":
            return (
                column.index.rank_prefix(self.value, stop)
                - column.index.rank_prefix(self.value, start)
            )
        return sum(
            column.index.rank(value, stop) - column.index.rank(value, start)
            for value in self.value
        )

    def matches(self, value: Any) -> bool:
        """Verify the predicate against a materialised value."""
        if self.kind == "eq":
            return value == self.value
        if self.kind == "prefix":
            return value.startswith(self.value)
        return value in self.value

    def scan(self, store: ColumnStore, start: int, stop: int) -> Iterator[int]:
        """Yield matching row positions in ``[start, stop)`` in ascending order."""
        index = store.column(self.column).index
        if self.kind == "eq":
            yield from self._scan_one(index, self.value, start, stop, prefix=False)
        elif self.kind == "prefix":
            yield from self._scan_one(index, self.value, start, stop, prefix=True)
        else:
            streams = [
                self._scan_one(index, value, start, stop, prefix=False)
                for value in self.value
            ]
            yield from _merge_ascending(streams)

    @staticmethod
    def _scan_one(index, value, start: int, stop: int, prefix: bool) -> Iterator[int]:
        if prefix:
            first = index.rank_prefix(value, start)
            last = index.rank_prefix(value, stop)
            for occurrence in range(first, last):
                yield index.select_prefix(value, occurrence)
        else:
            first = index.rank(value, start)
            last = index.rank(value, stop)
            for occurrence in range(first, last):
                yield index.select(value, occurrence)

    def describe(self) -> str:
        """Human-readable rendering used by EXPLAIN."""
        if self.kind == "eq":
            return f"{self.column} = {self.value!r}"
        if self.kind == "prefix":
            return f"{self.column} LIKE {self.value!r}%"
        return f"{self.column} IN {list(self.value)!r}"


def _merge_ascending(streams: List[Iterator[int]]) -> Iterator[int]:
    """Merge ascending position streams, dropping duplicates."""
    import heapq

    heap: List[Tuple[int, int]] = []
    for stream_id, stream in enumerate(streams):
        first = next(stream, None)
        if first is not None:
            heap.append((first, stream_id))
    heapq.heapify(heap)
    previous = None
    iterators = streams
    while heap:
        position, stream_id = heapq.heappop(heap)
        if position != previous:
            yield position
            previous = position
        following = next(iterators[stream_id], None)
        if following is not None:
            heapq.heappush(heap, (following, stream_id))


@dataclass(frozen=True)
class QueryPlan:
    """The plan chosen for a query: driving predicate plus verified residuals."""

    driver: Optional[Predicate]
    residual: Tuple[Predicate, ...]
    row_range: Tuple[int, int]
    estimated_rows: int

    def describe(self) -> str:
        """Textual EXPLAIN output."""
        lines = [f"scan rows [{self.row_range[0]}, {self.row_range[1]})"]
        if self.driver is None:
            lines.append("full scan (no predicates)")
        else:
            lines.append(
                f"drive with {self.driver.describe()} "
                f"(~{self.estimated_rows} candidate rows via Select)"
            )
        for predicate in self.residual:
            lines.append(f"verify {predicate.describe()} via Access")
        return "\n".join(lines)


class Query:
    """Fluent conjunctive query over a :class:`ColumnStore`."""

    def __init__(self, store: ColumnStore) -> None:
        self._store = store
        self._predicates: List[Predicate] = []
        self._range: Tuple[int, Optional[int]] = (0, None)
        self._limit: Optional[int] = None
        self._projection: Optional[List[str]] = None

    # ------------------------------------------------------------------
    # Builder methods (each returns self for chaining)
    # ------------------------------------------------------------------
    def where(self, predicate: Predicate) -> "Query":
        """Add a predicate (conjunctive)."""
        self._store.column(predicate.column)  # validate the column exists now
        self._predicates.append(predicate)
        return self

    def where_eq(self, column: str, value: Any) -> "Query":
        """Add ``column == value``."""
        return self.where(Predicate.eq(column, value))

    def where_prefix(self, column: str, prefix: Any) -> "Query":
        """Add ``column`` starts-with ``prefix``."""
        return self.where(Predicate.prefix(column, prefix))

    def where_in(self, column: str, values: Sequence[Any]) -> "Query":
        """Add ``column IN values``."""
        return self.where(Predicate.is_in(column, values))

    def in_rows(self, start: int, stop: Optional[int] = None) -> "Query":
        """Restrict to the row range ``[start, stop)`` (e.g. a time window)."""
        if start < 0 or (stop is not None and stop < start):
            raise InvalidOperationError(f"invalid row range [{start}, {stop})")
        self._range = (start, stop)
        return self

    def limit(self, count: int) -> "Query":
        """Stop after ``count`` matching rows."""
        if count < 0:
            raise InvalidOperationError("limit must be non-negative")
        self._limit = count
        return self

    def select(self, *columns: str) -> "Query":
        """Project only the given columns when materialising rows."""
        for column in columns:
            self._store.column(column)
        self._projection = list(columns)
        return self

    # ------------------------------------------------------------------
    # Planning and execution
    # ------------------------------------------------------------------
    def plan(self) -> QueryPlan:
        """Choose the driving predicate by exact selectivity."""
        start, stop = self._resolved_range()
        if not self._predicates:
            return QueryPlan(None, (), (start, stop), stop - start)
        ranked = sorted(
            self._predicates,
            key=lambda predicate: predicate.selectivity(self._store, start, stop),
        )
        driver, residual = ranked[0], tuple(ranked[1:])
        return QueryPlan(
            driver,
            residual,
            (start, stop),
            driver.selectivity(self._store, start, stop),
        )

    def explain(self) -> str:
        """The textual plan (EXPLAIN)."""
        return self.plan().describe()

    def positions(self) -> List[int]:
        """Row positions of the matching rows, ascending."""
        return list(self._execute())

    def count(self) -> int:
        """Number of matching rows (honours the limit if one is set)."""
        plan = self.plan()
        # Pure counting fast paths: no residual verification needed.
        if self._limit is None and plan.driver is not None and not plan.residual:
            return plan.estimated_rows
        if self._limit is None and plan.driver is None:
            return plan.row_range[1] - plan.row_range[0]
        return sum(1 for _ in self._execute())

    def rows(self) -> List[Dict[str, Any]]:
        """Materialise the matching rows (respecting the projection)."""
        columns = self._projection or self._store.column_names
        return [
            {name: self._store.column(name).value_at(position) for name in columns}
            for position in self._execute()
        ]

    def first(self) -> Optional[Dict[str, Any]]:
        """The first matching row, or None."""
        for position in self._execute():
            columns = self._projection or self._store.column_names
            return {name: self._store.column(name).value_at(position) for name in columns}
        return None

    def group_by_count(self, column: str) -> List[Tuple[Any, int]]:
        """GROUP BY ``column`` with COUNT(*) over the matching rows.

        When there are no predicates this runs entirely on the index (the
        Section 5 distinct-values-in-range algorithm); otherwise the matching
        rows are counted per value.
        """
        start, stop = self._resolved_range()
        if not self._predicates and self._limit is None:
            return self._store.column(column).group_by_count(start, stop)
        counts: Dict[Any, int] = {}
        for position in self._execute():
            value = self._store.column(column).value_at(position)
            counts[value] = counts.get(value, 0) + 1
        return sorted(counts.items(), key=lambda item: (-item[1], str(item[0])))

    # ------------------------------------------------------------------
    def _resolved_range(self) -> Tuple[int, int]:
        start, stop = self._range
        total = len(self._store)
        stop = total if stop is None else min(stop, total)
        start = min(start, stop)
        return start, stop

    def _execute(self) -> Iterator[int]:
        plan = self.plan()
        start, stop = plan.row_range
        emitted = 0
        if plan.driver is None:
            candidates: Iterator[int] = iter(range(start, stop))
        else:
            candidates = plan.driver.scan(self._store, start, stop)
        for position in candidates:
            if self._limit is not None and emitted >= self._limit:
                return
            if all(
                predicate.matches(self._store.column(predicate.column).value_at(position))
                for predicate in plan.residual
            ):
                yield position
                emitted += 1
        return
