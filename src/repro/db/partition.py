"""Position-range partitioning of columns for the sharded cluster.

The multi-process serving cluster splits each logical column into
contiguous row ranges -- shard ``i`` owns rows ``[lo_i, hi_i)`` -- so that
the full Grossi--Ottaviano query surface decomposes exactly (see
:mod:`repro.serving.router` for the identities).  This module holds the
db-layer half of that split:

* :func:`partition_ranges` -- the one balanced split function.  It is the
  single source of truth for the range arithmetic: the router's
  ``PartitionMap.from_total`` delegates here, so a supervisor restart, a
  worker respawn, and a test oracle all reproduce identical bounds.
* :func:`as_column_dict` -- normalise the servable shapes (one
  :class:`~repro.db.column.CompressedColumn`, a
  :class:`~repro.db.table.ColumnStore`, or an explicit name->column dict)
  into the named-column form the cluster partitions, with the same naming
  rule as the single-process ``IndexServer`` (a bare column serves as
  ``"default"``).
* :func:`slice_column` -- materialise one shard's row range of a column as
  a fresh static (read-only) column, ready for RWT2 imaging.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple, Union

from repro.core.static import WaveletTrie
from repro.db.column import CompressedColumn
from repro.db.table import ColumnStore

__all__ = ["as_column_dict", "partition_ranges", "slice_column"]


def partition_ranges(total: int, num_shards: int) -> List[Tuple[int, int]]:
    """Split ``[0, total)`` into ``num_shards`` balanced contiguous ranges.

    A pure function of its arguments: the first ``total % num_shards``
    ranges take one extra row, so every re-computation -- across processes,
    restarts, and respawns -- yields bit-identical bounds.  Ranges may be
    empty when ``total < num_shards``.
    """
    if num_shards < 1:
        raise ValueError(f"need at least one shard, got {num_shards}")
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    base, extra = divmod(total, num_shards)
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for shard in range(num_shards):
        hi = lo + base + (1 if shard < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def as_column_dict(
    source: Union[CompressedColumn, ColumnStore, Dict[str, CompressedColumn]],
) -> Dict[str, CompressedColumn]:
    """The named-column view of any servable object.

    Mirrors the ``IndexServer`` naming rule: a bare column becomes
    ``{"default": column}``; a :class:`ColumnStore` contributes each of its
    columns under its own name; a dict passes through.
    """
    if isinstance(source, CompressedColumn):
        return {"default": source}
    if isinstance(source, ColumnStore):
        return {name: source.column(name) for name in source.column_names}
    return dict(source)


def slice_column(
    column: CompressedColumn, lo: int, hi: int, name: str = None
) -> CompressedColumn:
    """Rows ``[lo, hi)`` of ``column`` as a fresh read-only static column.

    The slice is re-encoded into a static RRR :class:`WaveletTrie` (one
    bulk build over the extracted values), which is exactly the shape the
    RWT2 shard image wants: immutable, mmap-able, and byte-stable for a
    given value sequence.
    """
    if not 0 <= lo <= hi <= len(column):
        raise ValueError(
            f"slice [{lo}, {hi}) out of range for column of {len(column)} rows"
        )
    values: List[Any] = list(column.values(lo, hi))
    codec = getattr(column.index, "codec", None)
    trie = WaveletTrie(values, codec=codec)
    return CompressedColumn.from_index(
        name if name is not None else column.name, trie, appendable=False
    )
