"""The FM-index: compressed full-text search over a BWT + wavelet tree.

Ferragina-Manzini backward search (PAPERS.md, *Indexing Compressed Text*):
the Burrows-Wheeler transform of the terminator-extended text is stored in a
:class:`~repro.wavelet.huffman.HuffmanWaveletTree`, so the index occupies
roughly the character entropy of the text while answering

* ``count(pattern)`` -- number of occurrences, in ``|pattern|`` backward
  steps, each issuing **one** ``rank_many`` pair on the wavelet tree instead
  of two scalar rank walks;
* ``locate(pattern)`` -- all occurrence positions, via a sampled suffix
  array (``sa_sample`` is the space/time knob: one stored position every
  ``sa_sample`` text positions, at most ``sa_sample - 1`` batched LF steps
  per occurrence);
* ``extract(start, stop)`` -- any text slice, via inverse-suffix-array
  samples (at most ``sa_sample`` extra LF steps past the slice).

``count_many`` additionally batches backward search *across* patterns:
every step groups the live patterns by their next character and issues one
``rank_many`` per distinct character -- the access pattern the batch
subsystem was built for.  See docs/ARCHITECTURE.md, "Full-text search".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bits.packed import PackedIntVector
from repro.bitvector.plain import PlainBitVector
from repro.bitvector.rrr import RRRBitVector
from repro.exceptions import OutOfBoundsError
from repro.text.suffix_array import bwt_from_suffix_array, suffix_array
from repro.wavelet.huffman import HuffmanWaveletTree

__all__ = ["FMIndex"]

_TERMINATOR = 0  # code of the appended sentinel; smaller than every character

#: Node bitvector flavours for the BWT wavelet tree.  Backward search is
#: rank-bound, so the default is the plain vector whose ``rank_many`` is
#: kernel-vectorised (one gather + popcount for a whole batch); the Huffman
#: shape already holds total node bits near ``n * H0``.  The ``rrr`` flavour
#: trades batched rank speed for compressed nodes.
_BWT_BITVECTORS = {"plain": PlainBitVector, "rrr": RRRBitVector}


class FMIndex:
    """Compressed full-text index supporting count, locate and extract.

    Parameters
    ----------
    text:
        The text to index (any ``str``, including embedded NUL separators).
    sa_sample:
        Suffix-array sampling rate: every ``sa_sample``-th text position is
        stored explicitly.  Smaller values make ``locate``/``extract``
        faster and the index larger; the default 32 costs
        ``~2 * 64 / 32 = 4`` bits per character of sampled positions.
    bitvector:
        Node bitvector flavour of the BWT wavelet tree: ``"plain"``
        (default; kernel-vectorised batched ranks, ~``n * H0`` total node
        bits from the Huffman shape alone) or ``"rrr"`` (compressed nodes,
        scalar-speed ranks).

    Examples
    --------
    >>> fm = FMIndex("abracadabra")
    >>> fm.count("abra")
    2
    >>> fm.locate("abra")
    [0, 7]
    >>> fm.extract(4, 8)
    'cada'
    """

    def __init__(
        self, text: str = "", sa_sample: int = 32, bitvector: str = "plain"
    ) -> None:
        if not isinstance(text, str):
            raise TypeError(f"text must be str, got {type(text).__name__}")
        if sa_sample < 1:
            raise ValueError(f"sa_sample must be at least 1, got {sa_sample}")
        if bitvector not in _BWT_BITVECTORS:
            raise ValueError(
                f"unknown bitvector flavour {bitvector!r}; "
                f"choose from {sorted(_BWT_BITVECTORS)}"
            )
        alphabet = sorted(set(text))
        code_of = {char: code + 1 for code, char in enumerate(alphabet)}
        codes = [code_of[char] for char in text]
        codes.append(_TERMINATOR)
        order = suffix_array(codes)
        bwt = bwt_from_suffix_array(codes, order)
        rows = len(codes)
        marked_bits = [0] * rows
        samples: List[int] = []
        for row, position in enumerate(order):
            if position % sa_sample == 0:
                marked_bits[row] = 1
                samples.append(position)
        isa_samples = [0] * ((rows - 1) // sa_sample + 1)
        for row, position in enumerate(order):
            if position % sa_sample == 0:
                isa_samples[position // sa_sample] = row
        width = max(1, (rows - 1).bit_length())
        self._init_parts(
            len(text),
            "".join(alphabet),
            sa_sample,
            bitvector,
            HuffmanWaveletTree(
                bwt, bitvector_factory=_BWT_BITVECTORS[bitvector]
            ),
            RRRBitVector(marked_bits),
            PackedIntVector(width, samples),
            PackedIntVector(width, isa_samples),
        )

    def _init_parts(
        self,
        text_length: int,
        alphabet: str,
        sa_sample: int,
        bitvector: str,
        bwt_tree: HuffmanWaveletTree,
        marked: RRRBitVector,
        samples: PackedIntVector,
        isa_samples: PackedIntVector,
    ) -> None:
        self._bitvector_kind = bitvector
        self._text_length = text_length
        self._alphabet = alphabet
        self._code_of: Dict[str, int] = {
            char: code + 1 for code, char in enumerate(alphabet)
        }
        self._sa_sample = sa_sample
        self._bwt = bwt_tree
        self._marked = marked
        self._samples = samples
        self._isa_samples = isa_samples
        # C table: _c_table[c] = number of BWT symbols with code < c.
        counts = [0] * (len(alphabet) + 2)
        for code in range(len(alphabet) + 1):
            counts[code + 1] = counts[code] + bwt_tree.count(code)
        self._c_table = counts[: len(alphabet) + 1]

    @classmethod
    def _from_parts(
        cls,
        text_length: int,
        alphabet: str,
        sa_sample: int,
        bitvector: str,
        bwt_tree: HuffmanWaveletTree,
        marked: RRRBitVector,
        samples: PackedIntVector,
        isa_samples: PackedIntVector,
    ) -> "FMIndex":
        """Rebuild from stored parts without re-running suffix sorting."""
        self = cls.__new__(cls)
        self._init_parts(
            text_length,
            alphabet,
            sa_sample,
            bitvector,
            bwt_tree,
            marked,
            samples,
            isa_samples,
        )
        return self

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._text_length

    @property
    def text_length(self) -> int:
        """Characters in the indexed text (excluding the terminator)."""
        return self._text_length

    @property
    def sa_sample(self) -> int:
        """The suffix-array sampling rate (the space/time knob)."""
        return self._sa_sample

    @property
    def alphabet(self) -> str:
        """The distinct characters of the text, ascending."""
        return self._alphabet

    @property
    def bitvector_kind(self) -> str:
        """Node bitvector flavour of the BWT wavelet tree."""
        return self._bitvector_kind

    # ------------------------------------------------------------------
    # Backward search
    # ------------------------------------------------------------------
    def _check_pattern(self, pattern: str) -> None:
        if not isinstance(pattern, str):
            raise TypeError(
                f"pattern must be str, got {type(pattern).__name__}"
            )

    def _interval(self, pattern: str) -> Tuple[int, int]:
        """The suffix-array row interval of suffixes prefixed by ``pattern``.

        One batched backward step per character: both interval endpoints go
        through a single ``rank_many`` pair on the BWT wavelet tree.
        """
        low, high = 0, len(self._bwt)
        for char in reversed(pattern):
            code = self._code_of.get(char)
            if code is None:
                return (0, 0)
            base = self._c_table[code]
            low, high = self._bwt.rank_many(code, (low, high))
            low += base
            high += base
            if low >= high:
                return (0, 0)
        return (low, high)

    def _interval_scalar(self, pattern: str) -> Tuple[int, int]:
        """The unbatched backward search: two scalar ranks per character.

        Kept as the measured baseline of the batched path (see
        ``benchmarks/bench_search.py``); results are identical.
        """
        low, high = 0, len(self._bwt)
        for char in reversed(pattern):
            code = self._code_of.get(char)
            if code is None:
                return (0, 0)
            base = self._c_table[code]
            low = base + self._bwt.rank(code, low)
            high = base + self._bwt.rank(code, high)
            if low >= high:
                return (0, 0)
        return (low, high)

    def count(self, pattern: str) -> int:
        """Occurrences of ``pattern`` in the text (the empty pattern matches
        at every position, so it counts ``text_length + 1``)."""
        self._check_pattern(pattern)
        low, high = self._interval(pattern)
        return high - low

    def count_many(self, patterns: Sequence[str]) -> List[int]:
        """``count(pattern)`` for each pattern, batched across patterns.

        All backward searches advance in lock-step: at each step the live
        patterns are grouped by their next (rightmost unconsumed) character
        and every group issues **one** ``rank_many`` over both endpoints of
        every member, so the per-node wavelet walk is amortised over the
        whole group instead of paid per pattern -- ``O(distinct chars)``
        batched walks per step against ``2 q`` scalar walks.
        """
        for pattern in patterns:
            self._check_pattern(pattern)
        results: List[Optional[int]] = [None] * len(patterns)
        rows = len(self._bwt)
        live = [(slot, 0, rows) for slot in range(len(patterns))]
        step = 0
        while live:
            advancing: Dict[int, List[Tuple[int, int, int]]] = {}
            for slot, low, high in live:
                pattern = patterns[slot]
                if step == len(pattern):
                    results[slot] = high - low
                    continue
                code = self._code_of.get(pattern[len(pattern) - 1 - step])
                if code is None or low >= high:
                    results[slot] = 0
                    continue
                advancing.setdefault(code, []).append((slot, low, high))
            live = []
            for code, group in advancing.items():
                positions = [
                    endpoint for _, low, high in group for endpoint in (low, high)
                ]
                ranks = self._bwt.rank_many(code, positions)
                base = self._c_table[code]
                for index, (slot, _, _) in enumerate(group):
                    live.append(
                        (slot, base + ranks[2 * index], base + ranks[2 * index + 1])
                    )
            step += 1
        return results

    # ------------------------------------------------------------------
    # Locate / extract via the sampled suffix array
    # ------------------------------------------------------------------
    def locate(self, pattern: str) -> List[int]:
        """All occurrence positions of ``pattern``, ascending.

        Each of the ``occ`` matching rows walks the LF mapping until it hits
        a sampled row (< ``sa_sample`` steps, since LF decrements the text
        position and every ``sa_sample``-th position is sampled).  The walks
        advance together: one ``access_many`` over all live rows plus one
        ``rank_many`` per distinct BWT symbol per step, instead of
        ``occ * sa_sample`` scalar walks.
        """
        self._check_pattern(pattern)
        low, high = self._interval(pattern)
        positions: List[Optional[int]] = [None] * (high - low)
        pending = [(row, slot, 0) for slot, row in enumerate(range(low, high))]
        while pending:
            marks = self._marked.access_many([row for row, _, _ in pending])
            resolved = [state for state, mark in zip(pending, marks) if mark]
            if resolved:
                sample_indexes = self._marked.rank_many(
                    1, [row for row, _, _ in resolved]
                )
                for (_, slot, steps), index in zip(resolved, sample_indexes):
                    positions[slot] = self._samples[index] + steps
            pending = [state for state, mark in zip(pending, marks) if not mark]
            if not pending:
                break
            symbols = self._bwt.access_many([row for row, _, _ in pending])
            by_code: Dict[int, List[Tuple[int, int, int]]] = {}
            for state, code in zip(pending, symbols):
                by_code.setdefault(code, []).append(state)
            pending = []
            for code, group in by_code.items():
                ranks = self._bwt.rank_many(code, [row for row, _, _ in group])
                base = self._c_table[code]
                pending.extend(
                    (base + rank, slot, steps + 1)
                    for (_, slot, steps), rank in zip(group, ranks)
                )
        return sorted(positions)

    def extract(self, start: int, stop: int) -> str:
        """The text slice ``[start, stop)``, decoded from the BWT.

        Starts at the nearest inverse-suffix-array sample at or after
        ``stop`` (the terminator row when ``stop`` is near the end) and
        walks LF backwards collecting characters, so the cost is
        ``stop - start + sa_sample`` LF steps.
        """
        length = self._text_length
        if not 0 <= start <= stop <= length:
            raise OutOfBoundsError(
                f"extract range [{start}, {stop}) invalid for text length {length}"
            )
        if start == stop:
            return ""
        sample = self._sa_sample
        anchor = ((stop + sample - 1) // sample) * sample
        if anchor >= length:
            # Suffix-array row 0 is always the terminator suffix (position
            # ``length``): the terminator code is the unique smallest.
            anchor, row = length, 0
        else:
            row = self._isa_samples[anchor // sample]
        alphabet = self._alphabet
        out: List[str] = []
        position = anchor
        while position > start:
            code = self._bwt.access(row)
            row = self._c_table[code] + self._bwt.rank(code, row)
            position -= 1
            if position < stop:
                out.append(alphabet[code - 1])
        out.reverse()
        return "".join(out)

    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """BWT wavelet tree + sampled-SA structures + the C table."""
        return (
            self._bwt.size_in_bits()
            + self._marked.size_in_bits()
            + self._samples.size_in_bits()
            + self._isa_samples.size_in_bits()
            + len(self._c_table) * 64
        )
