"""Suffix-array and Burrows-Wheeler transform construction.

The FM-index builds on the suffix array of the terminator-extended text
(Manber & Myers prefix doubling): ``O(log n)`` rounds, each sorting the
positions by their current ``(rank[i], rank[i + k])`` pair and re-ranking.
Each round is one sort, so the whole construction rides on the host's sort
machinery: under the numpy kernel backend every round is a single
``np.lexsort`` plus vectorised re-ranking over int64 arrays; without numpy
the rounds fall back to Python's ``list.sort`` over rank pairs.  Both paths
produce identical arrays (the doubling comparisons are exact), which the
differential suite checks against a sorted-suffix oracle.

The input is a *code sequence*: non-negative ints with a unique smallest
terminator appended by the caller (:class:`~repro.text.fm_index.FMIndex`
maps characters to ``1..sigma`` and appends ``0``), so every suffix
comparison terminates and row 0 of the array is always the terminator
suffix.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.bits import kernel

__all__ = ["suffix_array", "bwt_from_suffix_array"]


def _numpy_or_none():
    """The numpy module when the active kernel backend is numpy, else None."""
    if kernel.active_backend() != "numpy":
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - backend registration implies numpy
        return None
    return numpy


def _suffix_array_numpy(np, codes: Sequence[int]) -> List[int]:
    n = len(codes)
    rank = np.asarray(codes, dtype=np.int64)
    order = np.argsort(rank, kind="stable")
    k = 1
    while True:
        second = np.full(n, -1, dtype=np.int64)
        if k < n:
            second[: n - k] = rank[k:]
        # lexsort sorts by the *last* key first: primary rank, then rank+k.
        order = np.lexsort((second, rank))
        first_sorted = rank[order]
        second_sorted = second[order]
        changed = np.empty(n, dtype=np.int64)
        changed[0] = 0
        if n > 1:
            changed[1:] = (first_sorted[1:] != first_sorted[:-1]) | (
                second_sorted[1:] != second_sorted[:-1]
            )
        rank = np.empty(n, dtype=np.int64)
        rank[order] = np.cumsum(changed)
        if int(rank[order[-1]]) == n - 1:
            return order.tolist()
        k *= 2


def _suffix_array_python(codes: Sequence[int]) -> List[int]:
    n = len(codes)
    rank = list(codes)
    order = sorted(range(n), key=rank.__getitem__)
    k = 1
    while True:
        def pair(position: int):
            tail = position + k
            return (rank[position], rank[tail] if tail < n else -1)

        order.sort(key=pair)
        new_rank = [0] * n
        previous = pair(order[0])
        current = 0
        for position in order:
            key = pair(position)
            if key != previous:
                current += 1
                previous = key
            new_rank[position] = current
        rank = new_rank
        if current == n - 1:
            return order
        k *= 2


def suffix_array(codes: Sequence[int]) -> List[int]:
    """The suffix array of ``codes`` (row -> start position, ascending suffixes).

    Prefix doubling: round ``j`` sorts positions by their length-``2^j``
    prefix using the ranks of the previous round, so the total cost is
    ``O(sort(n) log n)``.  Ties between suffixes never survive to the end
    when the caller appends a unique terminator; without one the comparison
    still terminates because ranks go dense and distinct within
    ``ceil(log2 n)`` rounds (shorter suffixes rank below their extensions
    via the ``-1`` out-of-range sentinel).
    """
    if not len(codes):
        return []
    for code in codes:
        if code < 0:
            raise ValueError("suffix-array codes must be non-negative integers")
    np = _numpy_or_none()
    if np is not None:
        return _suffix_array_numpy(np, codes)
    return _suffix_array_python(codes)


def bwt_from_suffix_array(codes: Sequence[int], order: Sequence[int]) -> List[int]:
    """The Burrows-Wheeler transform: ``bwt[row] = codes[order[row] - 1]``.

    Row 0's predecessor wraps to the last code, which is the terminator when
    the caller follows the terminator convention -- exactly the rotation
    form backward search expects.
    """
    if len(codes) != len(order):
        raise ValueError(
            f"codes ({len(codes)}) and suffix array ({len(order)}) lengths differ"
        )
    last = len(codes) - 1
    return [codes[position - 1] if position else codes[last] for position in order]
