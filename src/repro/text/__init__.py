"""Full-text search over the wavelet layer (Ferragina-Manzini FM-index).

The canonical rank/select consumer: a Burrows-Wheeler transform of the text
stored in a Huffman-shaped Wavelet Tree answers ``count``/``locate``/
``extract`` over the original text in compressed space, with backward search
issuing one batched rank pair per pattern character instead of two scalar
walks.  Construction goes through :func:`~repro.text.suffix_array.suffix_array`
(prefix doubling; vectorised ``lexsort`` rounds under the numpy kernel
backend, pure-python sorts otherwise).

See docs/ARCHITECTURE.md, "Full-text search".
"""

from repro.text.fm_index import FMIndex
from repro.text.suffix_array import bwt_from_suffix_array, suffix_array

__all__ = ["FMIndex", "bwt_from_suffix_array", "suffix_array"]
