"""Synthetic URL / path access logs.

Models the paper's main motivating workload: a chronological sequence of
accessed URLs where (a) domain popularity follows a Zipf law, (b) paths are
hierarchical so long shared prefixes are common, and (c) new URLs keep
appearing over time (the dynamic-alphabet requirement).
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.workloads.zipf import ZipfSampler

__all__ = ["UrlLogGenerator"]

_TLDS = ["com", "org", "net", "io", "edu"]
_WORDS = [
    "home", "search", "img", "news", "shop", "cart", "api", "v1", "v2",
    "user", "item", "list", "view", "edit", "doc", "blog", "tag", "feed",
    "data", "static", "media", "archive", "team", "help", "about",
]


class UrlLogGenerator:
    """Generates URL access-log sequences with Zipfian domains and shared path prefixes.

    Parameters
    ----------
    domains:
        Number of distinct domains in the population.
    depth:
        Maximum number of path segments per URL.
    branching:
        Number of distinct segment choices at each path level (smaller values
        mean longer shared prefixes).
    zipf_exponent:
        Skew of the domain popularity distribution.
    seed:
        Random seed; two generators with the same parameters produce the same
        log.
    """

    def __init__(
        self,
        domains: int = 50,
        depth: int = 4,
        branching: int = 6,
        zipf_exponent: float = 1.1,
        seed: int = 42,
    ) -> None:
        if domains < 1 or depth < 1 or branching < 1:
            raise ValueError("domains, depth and branching must be positive")
        self._rng = random.Random(seed)
        self._depth = depth
        self._branching = branching
        hosts = [
            f"www.{_WORDS[index % len(_WORDS)]}{index}.{_TLDS[index % len(_TLDS)]}"
            for index in range(domains)
        ]
        self._domain_sampler = ZipfSampler(hosts, exponent=zipf_exponent, seed=seed + 1)

    # ------------------------------------------------------------------
    def generate_url(self) -> str:
        """One URL: ``http://<zipf domain>/<hierarchical path>``."""
        domain = self._domain_sampler.sample()
        segments: List[str] = []
        depth = self._rng.randint(1, self._depth)
        for level in range(depth):
            choice = self._rng.randrange(self._branching)
            segments.append(f"{_WORDS[(choice + level) % len(_WORDS)]}{choice}")
        return f"http://{domain}/" + "/".join(segments)

    def generate(self, count: int) -> List[str]:
        """A log of ``count`` URL accesses, in chronological order."""
        return [self.generate_url() for _ in range(count)]

    def stream(self, count: int) -> Iterator[str]:
        """Lazily generate ``count`` URL accesses."""
        for _ in range(count):
            yield self.generate_url()

    def domains(self) -> List[str]:
        """The domain population, most popular first."""
        return self._domain_sampler.population
