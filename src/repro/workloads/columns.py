"""Synthetic column-store columns.

A relational column is a sequence of values whose cardinality ranges from a
handful (country codes) to millions (user identifiers).  The generator
controls cardinality and skew, which are the two knobs the Wavelet Trie's
space bound depends on (``LT`` grows with the distinct set, ``nH0`` with the
skew), and optionally gives values a hierarchical shape (e.g. ``region/city``)
to exercise the prefix operations.
"""

from __future__ import annotations

import random
from typing import List

from repro.workloads.zipf import ZipfSampler

__all__ = ["ColumnGenerator"]

_REGIONS = ["emea", "amer", "apac", "latam"]
_CITIES = [
    "rome", "pisa", "paris", "berlin", "london", "madrid", "tokyo", "osaka",
    "sydney", "delhi", "lima", "quito", "austin", "boston", "denver", "miami",
]


class ColumnGenerator:
    """Generates column values: categorical, hierarchical or identifier-like."""

    def __init__(
        self,
        cardinality: int = 64,
        zipf_exponent: float = 1.0,
        hierarchical: bool = True,
        seed: int = 13,
    ) -> None:
        if cardinality < 1:
            raise ValueError("cardinality must be positive")
        self._rng = random.Random(seed)
        self._hierarchical = hierarchical
        values = [self._make_value(index) for index in range(cardinality)]
        self._sampler = ZipfSampler(values, exponent=zipf_exponent, seed=seed + 1)

    def _make_value(self, index: int) -> str:
        if self._hierarchical:
            region = _REGIONS[index % len(_REGIONS)]
            city = _CITIES[(index // len(_REGIONS)) % len(_CITIES)]
            return f"{region}/{city}/site-{index}"
        return f"value-{index:06d}"

    def generate(self, rows: int) -> List[str]:
        """``rows`` column values drawn with the configured skew."""
        return self._sampler.sample_many(rows)

    def distinct_values(self) -> List[str]:
        """The value population (the column dictionary), most frequent first."""
        return self._sampler.population
