"""Seeded synthetic workload generators.

The paper motivates the Wavelet Trie with URL access logs, query logs,
column-oriented databases and social-network edge streams, but ships no data.
These generators produce deterministic synthetic stand-ins with the two
properties the data structure's behaviour actually depends on: a skewed
(Zipfian) frequency distribution over the distinct strings and a hierarchical
prefix structure (domains, paths, namespaces).

All generators accept an explicit ``seed`` and are fully reproducible.
"""

from repro.workloads.columns import ColumnGenerator
from repro.workloads.graphs import EdgeStreamGenerator
from repro.workloads.integers import IntegerSequenceGenerator
from repro.workloads.queries import QueryLogGenerator
from repro.workloads.urls import UrlLogGenerator
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "ColumnGenerator",
    "EdgeStreamGenerator",
    "IntegerSequenceGenerator",
    "QueryLogGenerator",
    "UrlLogGenerator",
    "ZipfSampler",
]
