"""Synthetic search query logs.

Query logs are sequences of short strings with a heavily skewed frequency
distribution and a moderate amount of shared prefixes (queries extending other
queries, common leading terms).  Used by the space experiments as a second,
less prefix-heavy workload next to the URL logs.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.workloads.zipf import ZipfSampler

__all__ = ["QueryLogGenerator"]

_TERMS = [
    "weather", "news", "python", "database", "wavelet", "trie", "compressed",
    "index", "flight", "hotel", "recipe", "football", "election", "movie",
    "review", "price", "train", "translate", "map", "near", "open", "best",
    "cheap", "how", "to", "install", "fix", "error",
]


class QueryLogGenerator:
    """Generates query-log sequences: 1-4 Zipf-distributed terms per query."""

    def __init__(
        self,
        vocabulary: int = 28,
        max_terms: int = 4,
        zipf_exponent: float = 1.0,
        seed: int = 7,
    ) -> None:
        if vocabulary < 1 or max_terms < 1:
            raise ValueError("vocabulary and max_terms must be positive")
        vocabulary = min(vocabulary, len(_TERMS))
        self._rng = random.Random(seed)
        self._max_terms = max_terms
        self._term_sampler = ZipfSampler(
            _TERMS[:vocabulary], exponent=zipf_exponent, seed=seed + 1
        )

    def generate_query(self) -> str:
        """One query string of 1..max_terms terms."""
        count = self._rng.randint(1, self._max_terms)
        return " ".join(self._term_sampler.sample() for _ in range(count))

    def generate(self, count: int) -> List[str]:
        """A log of ``count`` queries."""
        return [self.generate_query() for _ in range(count)]

    def stream(self, count: int) -> Iterator[str]:
        """Lazily generate ``count`` queries."""
        for _ in range(count):
            yield self.generate_query()
