"""Synthetic social-graph edge streams.

The paper's introduction mentions storing a changing binary relation (e.g.
friendship links) as a chronological sequence of edges, each edge being a pair
of URIs.  The generator produces a preferential-attachment edge stream encoded
as ``"src_uri -> dst_uri"`` strings, so prefix queries over the source URI
("what changed in the adjacency list of vertex v during this time frame?")
exercise ``RankPrefix``/``SelectPrefix`` naturally.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Tuple

__all__ = ["EdgeStreamGenerator"]


class EdgeStreamGenerator:
    """Preferential-attachment edge stream rendered as URI-pair strings."""

    def __init__(
        self,
        initial_vertices: int = 4,
        namespace: str = "http://sn.example/user/",
        seed: int = 23,
    ) -> None:
        if initial_vertices < 2:
            raise ValueError("need at least two initial vertices")
        self._rng = random.Random(seed)
        self._namespace = namespace
        # degree-proportional sampling pool (standard preferential attachment)
        self._pool: List[int] = list(range(initial_vertices))
        self._next_vertex = initial_vertices

    def _uri(self, vertex: int) -> str:
        return f"{self._namespace}{vertex:06d}"

    def generate_edge(self) -> Tuple[str, str]:
        """One new edge; occasionally a brand-new vertex joins the graph."""
        if self._rng.random() < 0.15:
            source = self._next_vertex
            self._next_vertex += 1
        else:
            source = self._rng.choice(self._pool)
        target = self._rng.choice(self._pool)
        if target == source:
            target = self._pool[(self._pool.index(target) + 1) % len(self._pool)]
        self._pool.append(source)
        self._pool.append(target)
        return self._uri(source), self._uri(target)

    def generate(self, count: int) -> List[str]:
        """``count`` edges as ``"src -> dst"`` strings, in arrival order."""
        return [f"{src} -> {dst}" for src, dst in (self.generate_edge() for _ in range(count))]

    def stream(self, count: int) -> Iterator[str]:
        """Lazily generate ``count`` edge strings."""
        for _ in range(count):
            src, dst = self.generate_edge()
            yield f"{src} -> {dst}"

    def vertex_uri(self, vertex: int) -> str:
        """The URI of a vertex id (useful to build prefix queries)."""
        return self._uri(vertex)
