"""Zipfian sampling over a finite population.

Web and log data is heavily skewed: a few domains/queries/values account for
most of the traffic.  :class:`ZipfSampler` draws items from a fixed population
with probability proportional to ``1 / rank^exponent``, using an explicit
cumulative table and a seeded random generator, so every workload built on it
is deterministic.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence, TypeVar

__all__ = ["ZipfSampler"]

ItemT = TypeVar("ItemT")


class ZipfSampler:
    """Draws items from ``population`` with a Zipf(``exponent``) distribution."""

    def __init__(
        self,
        population: Sequence[ItemT],
        exponent: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not population:
            raise ValueError("population must be non-empty")
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        self._population: List[ItemT] = list(population)
        self._rng = random.Random(seed)
        weights = [1.0 / ((rank + 1) ** exponent) for rank in range(len(population))]
        total = sum(weights)
        cumulative = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def sample(self) -> ItemT:
        """Draw one item."""
        point = self._rng.random()
        index = bisect.bisect_left(self._cumulative, point)
        return self._population[min(index, len(self._population) - 1)]

    def sample_many(self, count: int) -> List[ItemT]:
        """Draw ``count`` items independently."""
        return [self.sample() for _ in range(count)]

    @property
    def population(self) -> List[ItemT]:
        """The underlying population, most probable first."""
        return list(self._population)
