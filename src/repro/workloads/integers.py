"""Synthetic numeric sequences for the Section 6 experiments.

The balanced dynamic Wavelet Tree is motivated by sequences of integers drawn
from a huge universe (64-bit keys, Unicode code points) but with a small
working alphabet.  The generator controls the universe, the working-alphabet
size and the skew, and can produce clustered alphabets (consecutive integers)
that are the worst case for the unhashed binary trie.
"""

from __future__ import annotations

import random
from typing import List

from repro.workloads.zipf import ZipfSampler

__all__ = ["IntegerSequenceGenerator"]


class IntegerSequenceGenerator:
    """Generates integer sequences with a bounded working alphabet inside a huge universe."""

    def __init__(
        self,
        universe: int = 2 ** 64,
        alphabet_size: int = 256,
        clustered: bool = False,
        zipf_exponent: float = 1.0,
        seed: int = 17,
    ) -> None:
        if universe < 2 or alphabet_size < 1:
            raise ValueError("universe and alphabet_size must be positive")
        if alphabet_size > universe:
            raise ValueError("alphabet_size cannot exceed the universe")
        self._universe = universe
        rng = random.Random(seed)
        if clustered:
            base = rng.randrange(universe - alphabet_size)
            alphabet = [base + offset for offset in range(alphabet_size)]
        else:
            # random.sample cannot handle ranges beyond C ssize_t; draw values
            # one by one and deduplicate (collisions are vanishingly rare for
            # huge universes and handled explicitly for small ones).
            seen = set()
            while len(seen) < alphabet_size:
                seen.add(rng.randrange(universe))
            alphabet = sorted(seen)
        self._alphabet = alphabet
        self._sampler = ZipfSampler(alphabet, exponent=zipf_exponent, seed=seed + 1)

    @property
    def universe(self) -> int:
        """Exclusive upper bound of the values."""
        return self._universe

    @property
    def alphabet(self) -> List[int]:
        """The working alphabet actually used by the sequence."""
        return list(self._alphabet)

    def generate(self, count: int) -> List[int]:
        """``count`` values drawn from the working alphabet."""
        return self._sampler.sample_many(count)
