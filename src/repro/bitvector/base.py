"""Common interface for all rank/select bitvectors.

Every bitvector in the package -- static or dynamic -- implements the
*Fully Indexable Dictionary* interface of the paper's Section 2:

* ``access(pos)`` -- the bit at position ``pos``;
* ``rank(bit, pos)`` -- occurrences of ``bit`` in positions ``[0, pos)``;
* ``select(bit, idx)`` -- position of the ``idx``-th (0-based) occurrence of
  ``bit``.

The base class provides argument validation, convenience wrappers
(``rank1``, ``select0``, iteration, equality against a list of bits) and a
uniform ``size_in_bits()`` space-accounting hook used by
:mod:`repro.analysis.space`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, List

from repro.bits.kernel import as_int_list
from repro.exceptions import DuplicatePositionError, OutOfBoundsError

__all__ = [
    "BitVector",
    "StaticBitVector",
    "validate_select_indexes",
    "validate_delete_positions",
]


def validate_select_indexes(indexes, total: int, label, keep_arrays=False):
    """Normalise and range-check a ``select_many`` index batch.

    Returns ``indexes`` as a list of plain ints; raises
    :class:`OutOfBoundsError` naming the first offending index if any falls
    outside ``[0, total)``.  With ``keep_arrays=True`` a backend-native
    index array passes through unchanged (vectorised validation only) --
    reserved for callers whose batch path is array-aware, such as
    ``PlainBitVector``.  Shared by every ``select_many`` implementation so
    the batch contract (all-or-nothing validation, uniform error message)
    cannot drift between encodings.
    """
    indexes = normalize_batch(indexes)
    if len(indexes):
        lo, hi = batch_min_max(indexes)
        if lo < 0 or hi >= total:
            bad = next(i for i in indexes if not 0 <= i < total)
            raise OutOfBoundsError(
                f"select({label}, {bad}) out of range: only {total} occurrences"
            )
    if not isinstance(indexes, (list, tuple)):
        # A backend-native index array: keep it (read-only per the kernel
        # contract) only for callers whose batch path is array-aware;
        # everyone else gets the historical plain-int list.
        if keep_arrays:
            return indexes
        return as_int_list(indexes)
    return list(indexes)


def validate_delete_positions(positions, length: int) -> List[int]:
    """Normalise and validate a ``delete_many`` position batch.

    Returns ``positions`` as a list of plain ints in the caller's input
    order.  Every position must refer to the sequence *before* any deletion
    (the batch deletes them as if simultaneously), so positions must be
    distinct and in ``[0, length)``; duplicates raise
    :class:`DuplicatePositionError` (a :class:`ValueError` inside the
    :class:`ReproError` hierarchy -- the second deletion of the same
    pre-delete position is meaningless) and out-of-range positions raise
    :class:`OutOfBoundsError` before any mutation happens (all-or-nothing,
    like the batch queries).  Shared by
    every ``delete_many`` implementation so the batch-delete contract cannot
    drift between layers.
    """
    out = [int(pos) for pos in normalize_batch(positions)]
    if not out:
        return out
    if min(out) < 0 or max(out) >= length:
        bad = next(pos for pos in out if not 0 <= pos < length)
        raise OutOfBoundsError(
            f"delete position {bad} out of range for length {length}"
        )
    if len(set(out)) != len(out):
        seen = set()
        bad = next(pos for pos in out if pos in seen or seen.add(pos))
        raise DuplicatePositionError(
            f"delete position {bad} appears more than once in the batch"
        )
    return out


def normalize_batch(queries):
    """Normalise a batch-query container for the shared `*_many` paths.

    Lists and tuples pass through; a backend-native index array (anything
    exposing both ``min`` and ``__getitem__``, e.g. ``np.ndarray``) passes
    through unchanged so the kernel's vectorised paths keep it; every other
    iterable (generators, sets, dict views, ranges) is drained into a list.
    One definition shared by every batch entry point so the
    container-detection heuristic cannot drift between call sites.
    """
    if isinstance(queries, (list, tuple)):
        return queries
    if hasattr(queries, "min") and hasattr(queries, "__getitem__"):
        return queries
    return list(queries)


def batch_min_max(queries):
    """Bounds of a :func:`normalize_batch`-normalised non-empty batch, using
    the container's native vectorised reduction when it has one."""
    if isinstance(queries, (list, tuple)):
        return min(queries), max(queries)
    return queries.min(), queries.max()


class BitVector(ABC):
    """Abstract rank/select bitvector."""

    # ------------------------------------------------------------------
    # Abstract core
    # ------------------------------------------------------------------
    @abstractmethod
    def __len__(self) -> int:
        """Number of bits stored."""

    @abstractmethod
    def access(self, pos: int) -> int:
        """Return the bit at position ``pos`` (0-based)."""

    @abstractmethod
    def rank(self, bit: int, pos: int) -> int:
        """Number of occurrences of ``bit`` in positions ``[0, pos)``."""

    @abstractmethod
    def select(self, bit: int, idx: int) -> int:
        """Position of the ``idx``-th (0-based) occurrence of ``bit``."""

    @abstractmethod
    def size_in_bits(self) -> int:
        """Space used by the encoding, in bits (payload + directories)."""

    # ------------------------------------------------------------------
    # Derived conveniences
    # ------------------------------------------------------------------
    @property
    def ones(self) -> int:
        """Total number of 1 bits."""
        return self.rank(1, len(self))

    @property
    def zeros(self) -> int:
        """Total number of 0 bits."""
        return len(self) - self.ones

    def count(self, bit: int) -> int:
        """Total number of occurrences of ``bit``."""
        return self.ones if bit else self.zeros

    def rank0(self, pos: int) -> int:
        """Occurrences of 0 in ``[0, pos)``."""
        return self.rank(0, pos)

    def rank1(self, pos: int) -> int:
        """Occurrences of 1 in ``[0, pos)``."""
        return self.rank(1, pos)

    def select0(self, idx: int) -> int:
        """Position of the ``idx``-th 0."""
        return self.select(0, idx)

    def select1(self, idx: int) -> int:
        """Position of the ``idx``-th 1."""
        return self.select(1, idx)

    def rank_range(self, bit: int, start: int, stop: int) -> int:
        """Occurrences of ``bit`` in ``[start, stop)``."""
        if start > stop:
            raise OutOfBoundsError(f"invalid range [{start}, {stop})")
        return self.rank(bit, stop) - self.rank(bit, start)

    # ------------------------------------------------------------------
    # Batch query paths
    # ------------------------------------------------------------------
    def access_many(self, positions) -> List[int]:
        """Bits at each of ``positions``.

        Implementations with a cheaper amortised path (e.g. the word-level
        kernel of :class:`~repro.bitvector.plain.PlainBitVector`) override
        this; the default simply loops.
        """
        return [self.access(pos) for pos in positions]

    def rank_many(self, bit: int, positions) -> List[int]:
        """``rank(bit, pos)`` for each of ``positions`` (batch-amortised)."""
        return [self.rank(bit, pos) for pos in positions]

    def select_many(self, bit: int, indexes) -> List[int]:
        """``select(bit, idx)`` for each of ``indexes``, in input order.

        Batch convention (see docs/API.md): ``indexes`` need not be sorted --
        implementations sort internally and restore input order -- and the
        amortised cost is that of one shared directory walk plus the sort,
        O(D + q log q) where D is the directory span touched, instead of q
        independent O(select) descents.  This default simply loops.
        """
        return [self.select(bit, idx) for idx in indexes]

    def __getitem__(self, pos: int) -> int:
        if pos < 0:
            pos += len(self)
        return self.access(pos)

    def __iter__(self) -> Iterator[int]:
        for pos in range(len(self)):
            yield self.access(pos)

    def iter_range(self, start: int, stop: int) -> Iterator[int]:
        """Iterate over the bits in ``[start, stop)``.

        Subclasses with cheaper sequential decoding override this; it is the
        building block of the Section 5 sequential-access algorithm.
        """
        self._check_range(start, stop)
        for pos in range(start, stop):
            yield self.access(pos)

    def to_list(self) -> List[int]:
        """Materialise the bits as a Python list (testing helper)."""
        return list(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(length={len(self)}, ones={self.ones})"

    # ------------------------------------------------------------------
    # Validation helpers for subclasses
    # ------------------------------------------------------------------
    def _check_pos(self, pos: int) -> None:
        if not 0 <= pos < len(self):
            raise OutOfBoundsError(
                f"position {pos} out of range for length {len(self)}"
            )

    def _check_rank_pos(self, pos: int) -> None:
        if not 0 <= pos <= len(self):
            raise OutOfBoundsError(
                f"rank position {pos} out of range for length {len(self)}"
            )

    def _check_range(self, start: int, stop: int) -> None:
        if not (0 <= start <= stop <= len(self)):
            raise OutOfBoundsError(
                f"range [{start}, {stop}) invalid for length {len(self)}"
            )

    @staticmethod
    def _check_bit(bit: int) -> int:
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        return bit


class StaticBitVector(BitVector):
    """Marker base class for immutable bitvectors built once from their bits."""

    def is_static(self) -> bool:
        """Static bitvectors never change after construction."""
        return True
