"""Uncompressed bitvector with a sampled rank directory.

:class:`PlainBitVector` stores the raw bits packed into 64-bit words plus a
cumulative-popcount directory with one entry per word, giving O(1) ``rank``
and O(log n) ``select`` (binary search over the directory followed by an
in-word scan).  It is the uncompressed baseline for the ablation benchmark
(``ABL-BV`` in DESIGN.md) and the workhorse inside other encodings.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator, List, Union

from repro.bits.bitstring import Bits
from repro.bitvector.base import StaticBitVector
from repro.exceptions import OutOfBoundsError

__all__ = ["PlainBitVector"]

_WORD = 64
_WORD_MASK = (1 << _WORD) - 1


class PlainBitVector(StaticBitVector):
    """Packed, uncompressed bits with a per-word cumulative rank directory."""

    __slots__ = ("_words", "_length", "_cum_ones")

    def __init__(self, bits: Union[Bits, Iterable[int]] = ()) -> None:
        if not isinstance(bits, Bits):
            bits = Bits.from_iterable(bits)
        self._length = len(bits)
        self._words: List[int] = []
        # Pack MSB-first bit order into words where word w holds bits
        # [w*64, (w+1)*64), left-aligned within the word.
        value = bits.value
        remaining = self._length
        chunks: List[int] = []
        while remaining >= _WORD:
            remaining -= _WORD
            chunks.append((value >> remaining) & _WORD_MASK)
        if remaining:
            chunks.append((value & ((1 << remaining) - 1)) << (_WORD - remaining))
        self._words = chunks
        # Cumulative ones *before* each word.
        cum = 0
        self._cum_ones: List[int] = []
        for word in self._words:
            self._cum_ones.append(cum)
            cum += word.bit_count()
        self._cum_ones.append(cum)

    # ------------------------------------------------------------------
    @classmethod
    def from_bits(cls, bits: Bits) -> "PlainBitVector":
        """Build directly from a :class:`Bits` payload."""
        return cls(bits)

    def __len__(self) -> int:
        return self._length

    @property
    def ones(self) -> int:
        return self._cum_ones[-1]

    def access(self, pos: int) -> int:
        self._check_pos(pos)
        word_index, offset = divmod(pos, _WORD)
        return (self._words[word_index] >> (_WORD - 1 - offset)) & 1

    def rank(self, bit: int, pos: int) -> int:
        self._check_bit(bit)
        self._check_rank_pos(pos)
        word_index, offset = divmod(pos, _WORD)
        ones = self._cum_ones[word_index]
        if offset:
            word = self._words[word_index]
            ones += (word >> (_WORD - offset)).bit_count()
        return ones if bit else pos - ones

    def select(self, bit: int, idx: int) -> int:
        self._check_bit(bit)
        total = self.count(bit)
        if not 0 <= idx < total:
            raise OutOfBoundsError(
                f"select({bit}, {idx}) out of range: only {total} occurrences"
            )
        # Binary search the word containing the idx-th occurrence.
        if bit:
            word_index = bisect_right(self._cum_ones, idx) - 1
            seen = self._cum_ones[word_index]
        else:
            # cumulative zeros before word w = w*64 - cum_ones[w] (clamped at n)
            lo, hi = 0, len(self._words)
            while lo < hi:
                mid = (lo + hi + 1) // 2
                zeros_before = min(mid * _WORD, self._length) - self._cum_ones[mid]
                if zeros_before <= idx:
                    lo = mid
                else:
                    hi = mid - 1
            word_index = lo
            seen = word_index * _WORD - self._cum_ones[word_index]
        word = self._words[word_index]
        base = word_index * _WORD
        limit = min(_WORD, self._length - base)
        for offset in range(limit):
            value = (word >> (_WORD - 1 - offset)) & 1
            if value == bit:
                if seen == idx:
                    return base + offset
                seen += 1
        raise AssertionError("select directory inconsistent")  # pragma: no cover

    def iter_range(self, start: int, stop: int) -> Iterator[int]:
        self._check_range(start, stop)
        pos = start
        while pos < stop:
            word_index, offset = divmod(pos, _WORD)
            word = self._words[word_index]
            upper = min(stop, (word_index + 1) * _WORD)
            for local in range(offset, offset + (upper - pos)):
                yield (word >> (_WORD - 1 - local)) & 1
            pos = upper

    def size_in_bits(self) -> int:
        payload = len(self._words) * _WORD
        directory = len(self._cum_ones) * _WORD
        return payload + directory

    def payload_bits(self) -> int:
        """Bits used by the raw payload only (no rank directory)."""
        return len(self._words) * _WORD

    def to_bits(self) -> Bits:
        """Reconstruct the original :class:`Bits` payload."""
        value = 0
        for word in self._words:
            value = (value << _WORD) | word
        extra = len(self._words) * _WORD - self._length
        if extra:
            value >>= extra
        return Bits(value, self._length)
