"""Uncompressed bitvector with a two-level rank directory.

:class:`PlainBitVector` stores the raw bits packed into 64-bit words plus the
kernel's two-level rank directory -- cumulative popcounts per 8-word
superblock and per-word popcount bytes -- giving O(1) ``rank`` and O(log n)
``select``.  All word-level work is delegated to :mod:`repro.bits.kernel`, so
no query path ever scans bit by bit.  It is the uncompressed baseline for the
ablation benchmark (``ABL-BV`` in DESIGN.md) and the workhorse inside other
encodings.

CPython dispatch note
---------------------
The superblock/byte layout is the compact directory of record (it is what a
C or numpy kernel backend would consume directly), and scalar ``rank`` runs
on it.  ``select`` and the batch paths additionally use flat per-word
cumulative lists *derived* from that directory at construction: in CPython a
single C-level ``bisect``/list index beats any multi-step Python arithmetic,
and the derived lists cost O(n / 64) integers.  The zeros directories are
derived from the ones counts (``zeros before w = positions before w - ones
before w``), so 0- and 1-select share one code path with no independent
zero structure to keep in sync.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator, List, Sequence, Union

from repro.bits import kernel
from repro.bits.bitstring import Bits
from repro.bits.kernel import WORD, WORD_MASK, invert_word, select_in_word
from repro.bitvector.base import StaticBitVector, validate_select_indexes
from repro.exceptions import OutOfBoundsError

__all__ = ["PlainBitVector"]


class PlainBitVector(StaticBitVector):
    """Packed, uncompressed bits with a superblock/word rank directory."""

    __slots__ = (
        "_words",
        "_pad_words",
        "_length",
        "_super_cum",
        "_word_pop",
        "_word_cum",
        "_word_abs_cum",
        "_word_abs_zero_cum",
    )

    def __init__(self, bits: Union[Bits, Iterable[int]] = ()) -> None:
        if isinstance(bits, Bits):
            # O(n / 8): one big-int -> bytes conversion, no repeated shifts.
            self._length = len(bits)
            self._words: List[int] = kernel.pack_value(bits.value, self._length)
        else:
            self._words, self._length = kernel.pack_iterable(bits)
        self._super_cum, self._word_pop, self._word_cum = (
            kernel.build_rank_directory(self._words)
        )
        # One zero-padded shadow word so rank at pos == length needs no branch
        # (shifting by a full word yields 0).
        self._pad_words = self._words + [0]
        # Flat per-word absolute cumulatives derived from the two-level
        # directory (see the module docstring): ones before each word, and
        # zeros before each word computed from it.
        super_cum = self._super_cum
        self._word_abs_cum = [
            super_cum[index >> 3] + ones
            for index, ones in enumerate(self._word_cum)
        ]
        zero_cum = [
            (index << 6) - ones
            for index, ones in enumerate(self._word_abs_cum)
        ]
        zero_cum[-1] = self._length - self._word_abs_cum[-1]
        self._word_abs_zero_cum = zero_cum

    # ------------------------------------------------------------------
    @classmethod
    def from_bits(cls, bits: Bits) -> "PlainBitVector":
        """Build directly from a :class:`Bits` payload."""
        return cls(bits)

    def __len__(self) -> int:
        return self._length

    @property
    def ones(self) -> int:
        return self._super_cum[-1]

    def access(self, pos: int) -> int:
        self._check_pos(pos)
        return (self._words[pos >> 6] >> (WORD - 1 - (pos & 63))) & 1

    def rank(self, bit: int, pos: int) -> int:
        self._check_bit(bit)
        self._check_rank_pos(pos)
        index = pos >> 6
        offset = pos & 63
        # Two-level directory: superblock sample + in-superblock byte + one
        # shifted popcount.
        ones = self._super_cum[index >> 3] + self._word_cum[index]
        if offset:
            ones += (self._words[index] >> (WORD - offset)).bit_count()
        return ones if bit else pos - ones

    def select(
        self,
        bit: int,
        idx: int,
        _bisect=bisect_right,
        _select_in_word=select_in_word,
    ) -> int:
        """Word-skipping select; 0 and 1 share one directory-driven code path.

        One C-speed binary search over the flat per-word cumulative (ones, or
        the zeros list derived from it) locates the word; the kernel's
        table-driven ``select_in_word`` finishes inside it.  No per-bit
        scanning anywhere.
        """
        if bit == 1:
            cum = self._word_abs_cum
        elif bit == 0:
            cum = self._word_abs_zero_cum
        else:
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        total = cum[-1]
        if not 0 <= idx < total:
            raise OutOfBoundsError(
                f"select({bit}, {idx}) out of range: only {total} occurrences"
            )
        index = _bisect(cum, idx) - 1
        rel = idx - cum[index]
        words = self._words
        word = words[index]
        if not bit:
            # Complement within the word's valid width; the padded tail of
            # the final word must not surface as zeros.
            if index != len(words) - 1:
                word = ~word & WORD_MASK
            else:
                word = invert_word(word, self._length - (index << 6))
        return (index << 6) + _select_in_word(word, rel)

    def iter_range(self, start: int, stop: int) -> Iterator[int]:
        self._check_range(start, stop)
        return kernel.broadword_iter_words(self._words, start, stop)

    # ------------------------------------------------------------------
    # Batch query paths (amortise attribute lookups and validation)
    # ------------------------------------------------------------------
    def access_many(self, positions: Sequence[int]) -> List[int]:
        """Bits at each position, amortised O(1) each: validation (one
        min/max pass) and attribute lookups are hoisted out of one list
        comprehension over direct word probes."""
        if not isinstance(positions, (list, tuple)):
            positions = list(positions)
        if not positions:
            return []
        length = self._length
        if min(positions) < 0 or max(positions) >= length:
            bad = next(p for p in positions if not 0 <= p < length)
            raise OutOfBoundsError(
                f"position {bad} out of range for length {length}"
            )
        words = self._words
        return [
            (words[pos >> 6] >> (WORD - 1 - (pos & 63))) & 1 for pos in positions
        ]

    def rank_many(self, bit: int, positions: Sequence[int]) -> List[int]:
        """``rank(bit, pos)`` per position, amortised O(1) each: one flat
        cumulative lookup plus one shifted popcount inside a single list
        comprehension (validation and directory attribute loads shared)."""
        self._check_bit(bit)
        if not isinstance(positions, (list, tuple)):
            positions = list(positions)
        if not positions:
            return []
        length = self._length
        if min(positions) < 0 or max(positions) > length:
            bad = next(p for p in positions if not 0 <= p <= length)
            raise OutOfBoundsError(
                f"rank position {bad} out of range for length {length}"
            )
        words = self._pad_words
        abs_cum = self._word_abs_cum
        if bit:
            return [
                abs_cum[index := pos >> 6]
                + (words[index] >> (WORD - (pos & 63))).bit_count()
                for pos in positions
            ]
        return [
            pos
            - abs_cum[index := pos >> 6]
            - (words[index] >> (WORD - (pos & 63))).bit_count()
            for pos in positions
        ]

    def select_many(
        self,
        bit: int,
        indexes: Sequence[int],
        _bisect=bisect_right,
    ) -> List[int]:
        """``select(bit, idx)`` for each index, batch-amortised.

        The indexes are sorted once; the word directory is then walked
        monotonically (each ``bisect`` resumes from the previous word) and
        all queries landing in the same word are answered by one pass of the
        kernel's sorted in-word multi-select.  Amortised O(q log q) for the
        sort plus O(log n + q) directory work, against q full O(log n)
        binary searches for the scalar loop.
        """
        if bit == 1:
            cum = self._word_abs_cum
        elif bit == 0:
            cum = self._word_abs_zero_cum
        else:
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        total = cum[-1]
        indexes = validate_select_indexes(indexes, total, bit)
        if not indexes:
            return []
        order = sorted(range(len(indexes)), key=indexes.__getitem__)
        out = [0] * len(indexes)
        words = self._words
        last_word = len(words) - 1
        n_queries = len(order)
        word_index = 0
        at = 0
        while at < n_queries:
            idx = indexes[order[at]]
            word_index = _bisect(cum, idx, word_index) - 1
            upper = cum[word_index + 1] if word_index + 1 < len(cum) else total
            group_end = at + 1
            while group_end < n_queries and indexes[order[group_end]] < upper:
                group_end += 1
            word = words[word_index]
            if not bit:
                if word_index != last_word:
                    word = ~word & WORD_MASK
                else:
                    word = invert_word(word, self._length - (word_index << 6))
            base = word_index << 6
            seen = cum[word_index]
            offsets = kernel.select_in_word_many(
                word, [indexes[order[i]] - seen for i in range(at, group_end)]
            )
            for i, offset in zip(range(at, group_end), offsets):
                out[order[i]] = base + offset
            at = group_end
        return out

    # ------------------------------------------------------------------
    def extract_bits(self, start: int, stop: int) -> Bits:
        """The sub-payload ``[start, stop)`` as :class:`Bits`, word-sliced."""
        self._check_range(start, stop)
        width = stop - start
        if width == 0:
            return Bits.empty()
        return Bits(kernel.extract_bits_value(self._words, start, stop), width)

    def size_in_bits(self) -> int:
        payload = len(self._words) * WORD
        directory = (
            len(self._super_cum) * WORD
            + len(self._word_pop) * 8
            + len(self._word_cum) * 16
            + (len(self._word_abs_cum) + len(self._word_abs_zero_cum)) * WORD
        )
        return payload + directory + WORD  # + the rank shadow sentinel word

    def payload_bits(self) -> int:
        """Bits used by the raw payload only (no rank directory)."""
        return len(self._words) * WORD

    def to_bits(self) -> Bits:
        """Reconstruct the original :class:`Bits` payload."""
        return Bits(kernel.unpack_value(self._words, self._length), self._length)
