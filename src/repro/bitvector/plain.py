"""Uncompressed bitvector with a two-level rank directory.

:class:`PlainBitVector` stores the raw bits packed into 64-bit words plus the
kernel's two-level rank directory -- cumulative popcounts per 8-word
superblock and per-word popcount bytes -- giving O(1) ``rank`` and O(log n)
``select``.  All word-level work is delegated to :mod:`repro.bits.kernel`, so
no query path ever scans bit by bit.  It is the uncompressed baseline for the
ablation benchmark (``ABL-BV`` in DESIGN.md) and the workhorse inside other
encodings.

CPython dispatch note
---------------------
The superblock/byte layout is the compact directory of record, and scalar
``rank`` runs on it.  ``select`` and the small-batch paths additionally use
flat per-word cumulative lists *derived* from that directory at construction
(via the kernel's ``cumulative_popcounts``): in CPython a single C-level
``bisect``/list index beats any multi-step Python arithmetic, and the
derived lists cost O(n / 64) integers.  The zeros directories are derived
from the ones counts (``zeros before w = positions before w - ones before
w``), so 0- and 1-select share one code path with no independent zero
structure to keep in sync.  Large batches go through the kernel backend's
``*_many_packed`` functions over a lazily cached backend handle.  Under the
numpy backend those are whole-array gathers and the results mirror the
input container (list in, list out; array in, array out); the python
backend accepts arrays too but always answers with plain lists (its native
container).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator, List, Sequence, Union

from repro.bits import kernel
from repro.bits.bitstring import Bits
from repro.bits.kernel import WORD, WORD_MASK, invert_word, select_in_word
from repro.bitvector.base import (
    StaticBitVector,
    batch_min_max,
    normalize_batch,
    validate_select_indexes,
)
from repro.exceptions import OutOfBoundsError

__all__ = ["PlainBitVector"]

# Below this many queries the fixed cost of a backend batch call exceeds the
# win; such batches run on the flat python directories directly.
_SMALL_BATCH = 32


class PlainBitVector(StaticBitVector):
    """Packed, uncompressed bits with a superblock/word rank directory."""

    __slots__ = (
        "_words",
        "_pad_words",
        "_length",
        "_super_cum",
        "_word_pop",
        "_word_cum",
        "_word_abs_cum",
        "_word_abs_zero_cum",
        "_batch_handle",
        "_batch_backend",
    )

    def __init__(self, bits: Union[Bits, Iterable[int]] = ()) -> None:
        if isinstance(bits, Bits):
            # O(n / 8): one big-int -> bytes conversion, no repeated shifts.
            length = len(bits)
            words: List[int] = kernel.pack_value(bits.value, length)
        else:
            words, length = kernel.pack_bits(bits)
            words = kernel.as_int_list(words)
        self._init_from_words(words, length)

    def _init_from_words(self, words: List[int], length: int) -> None:
        self._words = words
        self._length = length
        super_cum, word_pop, word_cum = kernel.build_rank_directory(words)
        self._super_cum = kernel.as_int_list(super_cum)
        self._word_pop = word_pop
        self._word_cum = kernel.as_int_list(word_cum)
        # One zero-padded shadow word so rank at pos == length needs no branch
        # (shifting by a full word yields 0).
        self._pad_words = words + [0]
        # Flat per-word absolute cumulatives (see the module docstring).
        abs_cum, zero_cum = kernel.cumulative_popcounts(word_pop, length)
        self._word_abs_cum = kernel.as_int_list(abs_cum)
        self._word_abs_zero_cum = kernel.as_int_list(zero_cum)
        self._batch_handle = None
        self._batch_backend = None

    def _handle(self):
        """The kernel backend's batch handle, re-prepared on backend switch."""
        backend = kernel.active_backend()
        if self._batch_backend != backend:
            self._batch_handle = kernel.prepare_rank_select(
                self._words,
                self._length,
                self._word_abs_cum,
                self._word_abs_zero_cum,
            )
            self._batch_backend = backend
        return self._batch_handle

    # ------------------------------------------------------------------
    @classmethod
    def from_bits(cls, bits: Bits) -> "PlainBitVector":
        """Build directly from a :class:`Bits` payload."""
        return cls(bits)

    @classmethod
    def from_words(cls, words: Sequence[int], length: int) -> "PlainBitVector":
        """Build from a kernel packed word sequence (list or word array).

        The array-aware construction path: bulk producers (wavelet builders,
        backend packers) hand the words straight in, skipping any big-int or
        per-bit round trip.
        """
        self = cls.__new__(cls)
        self._init_from_words(kernel.as_int_list(words), length)
        return self

    # ------------------------------------------------------------------
    # Frozen-image (RWT2) exchange -- see docs/ARCHITECTURE.md, "Storage"
    # ------------------------------------------------------------------
    def to_words_image(self, sink, prefix: str) -> dict:
        """Write the payload words and every directory into an image sink.

        Sections (all little-endian, named ``prefix`` + suffix): ``words``
        is the padded word payload *including* the rank shadow sentinel;
        ``super``/``wpop``/``wcum`` are the two-level directory and
        ``acum``/``zcum`` the flat per-word absolute cumulatives.  Returns
        the meta dict :meth:`from_words_image` needs.
        """
        sink.add_u64(prefix + "words", self._pad_words)
        sink.add_i64(prefix + "super", self._super_cum)
        sink.add_bytes(prefix + "wpop", bytes(self._word_pop))
        sink.add_u16(prefix + "wcum", self._word_cum)
        sink.add_i64(prefix + "acum", self._word_abs_cum)
        sink.add_i64(prefix + "zcum", self._word_abs_zero_cum)
        return {"length": self._length}

    @classmethod
    def from_words_image(cls, image, prefix: str, meta: dict) -> "PlainBitVector":
        """Open from a frozen image; every field is a zero-copy buffer view.

        Nothing is rebuilt: the words and all five directories alias the
        image's mapped bytes read-only.  The views yield plain python ints,
        so scalar paths work unchanged under every backend, and the numpy
        batch handles wrap the same bytes without copying.
        """
        self = cls.__new__(cls)
        pad = image.words(prefix + "words")
        self._pad_words = pad
        self._words = pad[:-1]
        self._length = int(meta["length"])
        self._super_cum = image.int64(prefix + "super")
        self._word_pop = image.section(prefix + "wpop")
        self._word_cum = image.uint16(prefix + "wcum")
        self._word_abs_cum = image.int64(prefix + "acum")
        self._word_abs_zero_cum = image.int64(prefix + "zcum")
        self._batch_handle = None
        self._batch_backend = None
        return self

    def __len__(self) -> int:
        return self._length

    @property
    def ones(self) -> int:
        return self._super_cum[-1]

    def access(self, pos: int) -> int:
        self._check_pos(pos)
        return (self._words[pos >> 6] >> (WORD - 1 - (pos & 63))) & 1

    def rank(self, bit: int, pos: int) -> int:
        self._check_bit(bit)
        self._check_rank_pos(pos)
        index = pos >> 6
        offset = pos & 63
        # Two-level directory: superblock sample + in-superblock byte + one
        # shifted popcount.
        ones = self._super_cum[index >> 3] + self._word_cum[index]
        if offset:
            ones += (self._words[index] >> (WORD - offset)).bit_count()
        return ones if bit else pos - ones

    def select(
        self,
        bit: int,
        idx: int,
        _bisect=bisect_right,
        _select_in_word=select_in_word,
    ) -> int:
        """Word-skipping select; 0 and 1 share one directory-driven code path.

        One C-speed binary search over the flat per-word cumulative (ones, or
        the zeros list derived from it) locates the word; the kernel's
        table-driven ``select_in_word`` finishes inside it.  No per-bit
        scanning anywhere.
        """
        if bit == 1:
            cum = self._word_abs_cum
        elif bit == 0:
            cum = self._word_abs_zero_cum
        else:
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        total = cum[-1]
        if not 0 <= idx < total:
            raise OutOfBoundsError(
                f"select({bit}, {idx}) out of range: only {total} occurrences"
            )
        index = _bisect(cum, idx) - 1
        rel = idx - cum[index]
        words = self._words
        word = words[index]
        if not bit:
            # Complement within the word's valid width; the padded tail of
            # the final word must not surface as zeros.
            if index != len(words) - 1:
                word = ~word & WORD_MASK
            else:
                word = invert_word(word, self._length - (index << 6))
        return (index << 6) + _select_in_word(word, rel)

    def iter_range(self, start: int, stop: int) -> Iterator[int]:
        self._check_range(start, stop)
        return kernel.broadword_iter_words(self._words, start, stop)

    # ------------------------------------------------------------------
    # Batch query paths (amortise attribute lookups and validation)
    # ------------------------------------------------------------------
    def access_many(self, positions: Sequence[int]):
        """Bits at each position, amortised O(1) each.

        Validation is one min/max pass; small batches run a direct word-probe
        comprehension, larger ones one backend ``access_many_packed`` call
        (whole-array gathers under the numpy backend).  Array inputs come
        back as arrays under the numpy backend, as lists under python.
        """
        positions = normalize_batch(positions)
        if len(positions) == 0:
            return []
        length = self._length
        lo, hi = batch_min_max(positions)
        if lo < 0 or hi >= length:
            bad = next(p for p in positions if not 0 <= p < length)
            raise OutOfBoundsError(
                f"position {bad} out of range for length {length}"
            )
        if isinstance(positions, (list, tuple)) and len(positions) < _SMALL_BATCH:
            words = self._words
            return [
                (words[pos >> 6] >> (WORD - 1 - (pos & 63))) & 1
                for pos in positions
            ]
        return kernel.access_many_packed(self._handle(), positions)

    def rank_many(self, bit: int, positions: Sequence[int]):
        """``rank(bit, pos)`` per position, amortised O(1) each.

        One flat cumulative lookup plus one shifted popcount per query,
        batched: small batches in a single list comprehension, larger ones
        through one backend ``rank_many_packed`` call (one gather + one
        vectorised popcount under the numpy backend).  Array inputs come
        back as arrays under the numpy backend, as lists under python.
        """
        self._check_bit(bit)
        positions = normalize_batch(positions)
        if len(positions) == 0:
            return []
        length = self._length
        lo, hi = batch_min_max(positions)
        if lo < 0 or hi > length:
            bad = next(p for p in positions if not 0 <= p <= length)
            raise OutOfBoundsError(
                f"rank position {bad} out of range for length {length}"
            )
        if isinstance(positions, (list, tuple)) and len(positions) < _SMALL_BATCH:
            words = self._pad_words
            abs_cum = self._word_abs_cum
            if bit:
                return [
                    abs_cum[index := pos >> 6]
                    + (words[index] >> (WORD - (pos & 63))).bit_count()
                    for pos in positions
                ]
            return [
                pos
                - abs_cum[index := pos >> 6]
                - (words[index] >> (WORD - (pos & 63))).bit_count()
                for pos in positions
            ]
        return kernel.rank_many_packed(self._handle(), bit, positions)

    def select_many(self, bit: int, indexes: Sequence[int]):
        """``select(bit, idx)`` for each index, batch-amortised.

        Small batches loop the scalar directory select; larger ones go
        through one backend ``select_many_packed`` call -- a monotone shared
        directory walk plus sorted in-word multi-select on the python
        backend, one ``searchsorted`` plus a vectorised byte-table select
        under the numpy backend.  Amortised O(q log n) with shared directory
        work, input order preserved; array inputs come back as arrays under
        the numpy backend, as lists under python.
        """
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        cum = self._word_abs_cum if bit else self._word_abs_zero_cum
        indexes = validate_select_indexes(indexes, cum[-1], bit, keep_arrays=True)
        if len(indexes) == 0:
            return []
        if isinstance(indexes, (list, tuple)) and len(indexes) < _SMALL_BATCH:
            return [self.select(bit, idx) for idx in indexes]
        return kernel.select_many_packed(self._handle(), bit, indexes)

    # ------------------------------------------------------------------
    def extract_bits(self, start: int, stop: int) -> Bits:
        """The sub-payload ``[start, stop)`` as :class:`Bits`, word-sliced."""
        self._check_range(start, stop)
        width = stop - start
        if width == 0:
            return Bits.empty()
        return Bits(kernel.extract_bits_value(self._words, start, stop), width)

    def size_in_bits(self) -> int:
        payload = len(self._words) * WORD
        directory = (
            len(self._super_cum) * WORD
            + len(self._word_pop) * 8
            + len(self._word_cum) * 16
            + (len(self._word_abs_cum) + len(self._word_abs_zero_cum)) * WORD
        )
        return payload + directory + WORD  # + the rank shadow sentinel word

    def payload_bits(self) -> int:
        """Bits used by the raw payload only (no rank directory)."""
        return len(self._words) * WORD

    def to_bits(self) -> Bits:
        """Reconstruct the original :class:`Bits` payload."""
        return Bits(kernel.unpack_value(self._words, self._length), self._length)
