"""Gap-encoded dynamic bitvector (the related-work design of Makinen & Navarro).

Section 4.2 of the paper starts from this structure -- gaps between 1s encoded
with Elias delta codes inside a balanced tree -- and replaces the encoding
with RLE + gamma because gap encoding cannot support ``Init(b, n)`` in
sub-linear time when ``b = 1`` (the number of codes is the number of 1s,
Remark 4.2).  This implementation exists for exactly that comparison: it
shares the balanced-tree machinery of :class:`~repro.bitvector.dynamic.
DynamicBitVector` but stores *gaps*, and its ``init_run`` genuinely degrades
to linear work for runs of ones, which the ``ABL-INIT`` benchmark measures.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from repro.bits.codes import delta_code_length
from repro.bitvector.base import BitVector
from repro.bitvector.dynamic import DynamicBitVector
from repro.exceptions import OutOfBoundsError

__all__ = ["GapEncodedBitVector"]


class GapEncodedBitVector(BitVector):
    """Dynamic bitvector compressed by the gaps between consecutive 1 bits.

    Internally the positions of the 1s are maintained in a balanced structure
    (reusing the run-length treap keyed by gaps); the exposed behaviour is the
    usual FID interface plus insert/delete/append.  Space is proportional to
    the number of 1s (``m log(n/m)`` bits of delta codes), which is excellent
    for sparse bitvectors but rules out a cheap ``Init(1, n)``.
    """

    __slots__ = ("_length", "_one_positions")

    def __init__(self, bits: Iterable[int] = ()) -> None:
        self._length = 0
        # A dynamic bitvector over "is this position a 1" used as the ordered
        # container of one-positions; every operation below maps to O(log n)
        # operations on it.  (The point of this class is the *encoding size*
        # model and the Init comparison, not a second tree implementation.)
        self._one_positions = DynamicBitVector()
        self.extend(bits)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    @property
    def ones(self) -> int:
        return self._one_positions.ones

    # ------------------------------------------------------------------
    def access(self, pos: int) -> int:
        self._check_pos(pos)
        return self._one_positions.access(pos)

    def rank(self, bit: int, pos: int) -> int:
        self._check_bit(bit)
        self._check_rank_pos(pos)
        return self._one_positions.rank(bit, pos)

    def select(self, bit: int, idx: int) -> int:
        self._check_bit(bit)
        return self._one_positions.select(bit, idx)

    # ------------------------------------------------------------------
    # Batch query paths (delegate to the run-treap's single-pass batches)
    # ------------------------------------------------------------------
    def access_many(self, positions: Iterable[int]) -> List[int]:
        """Bits at each position, amortised O(r + q log q) (one runs pass)."""
        return self._one_positions.access_many(positions)

    def rank_many(self, bit: int, positions: Iterable[int]) -> List[int]:
        """``rank(bit, pos)`` per position, amortised O(r + q log q)."""
        self._check_bit(bit)
        return self._one_positions.rank_many(bit, positions)

    def select_many(self, bit: int, indexes: Iterable[int]) -> List[int]:
        """``select(bit, idx)`` per index, amortised O(r + q log q)."""
        self._check_bit(bit)
        return self._one_positions.select_many(bit, indexes)

    # ------------------------------------------------------------------
    def append(self, bit: int) -> None:
        """Append one bit."""
        self._one_positions.append(1 if bit else 0)
        self._length += 1

    def extend(self, bits: Iterable[int]) -> None:
        """Append every bit (bulk ``Append``, via the RLE container's runs path)."""
        self._one_positions.extend(bits)
        self._length = len(self._one_positions)

    def insert(self, pos: int, bit: int) -> None:
        """Insert ``bit`` at position ``pos``."""
        if not 0 <= pos <= self._length:
            raise OutOfBoundsError(f"insert position {pos} out of range")
        self._one_positions.insert(pos, 1 if bit else 0)
        self._length += 1

    def delete(self, pos: int) -> int:
        """Delete and return the bit at position ``pos``."""
        self._check_pos(pos)
        self._length -= 1
        return self._one_positions.delete(pos)

    def delete_many(self, positions: Iterable[int]) -> List[int]:
        """Delete the bits at ``positions``; values come back in input order.

        Delegates to the RLE container's bulk
        :meth:`~repro.bitvector.dynamic.DynamicBitVector.delete_many` (one
        split + linear run surgery + merge), amortised O(log r + r_span +
        k log k) for k deletions instead of k O(log r) walks.
        """
        removed = self._one_positions.delete_many(positions)
        self._length -= len(removed)
        return removed

    @classmethod
    def init_run(cls, bit: int, length: int) -> "GapEncodedBitVector":
        """``Init(b, n)``.

        For ``b = 0`` this is cheap (no 1s, hence no gaps to encode); for
        ``b = 1`` the gap encoding must materialise one code per 1 bit, i.e.
        Omega(n) work -- the Remark 4.2 limitation this class demonstrates.
        """
        vector = cls()
        if bit == 0:
            vector._one_positions = DynamicBitVector.init_run(0, length)
            vector._length = length
            return vector
        for _ in range(length):
            vector.append(1)
        return vector

    # ------------------------------------------------------------------
    def gaps(self) -> Iterator[int]:
        """The gaps ``g_i`` between consecutive 1s (the encoded payload).

        One in-order pass over the underlying runs (O(r + m)) instead of one
        ``select(1, idx)`` tree walk per 1 bit (O(m log r)): within a 1-run of
        length ``k`` the first gap is the preceding 0-run and the remaining
        ``k - 1`` gaps are zero.
        """
        previous = -1
        position = 0
        for bit, length in self._one_positions.runs():
            if bit:
                yield position - previous - 1
                for _ in range(length - 1):
                    yield 0
                previous = position + length - 1
            position += length

    def size_in_bits(self) -> int:
        """Size of the gap + Elias delta encoding (the space model of [18]).

        Computed from the runs in O(r): a 1-run of length ``k`` preceded by a
        gap ``g`` contributes ``delta(g + 1) + (k - 1) * delta(1)`` bits.
        """
        total = 64
        unit = delta_code_length(1)
        previous = -1
        position = 0
        for bit, length in self._one_positions.runs():
            if bit:
                total += delta_code_length(position - previous)
                total += (length - 1) * unit
                previous = position + length - 1
            position += length
        return total

    def to_list(self) -> List[int]:
        return self._one_positions.to_list()
