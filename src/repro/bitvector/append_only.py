"""Append-only compressed bitvector (paper Section 4.1, Theorem 4.5).

The paper's construction keeps a small mutable tail (Lemma 4.6), a collection
of frozen RRR-compressed blocks, and partial-sum directories over the block
lengths and popcounts; appends are O(1) (amortised in Lemma 4.7, worst-case
after de-amortisation) and queries are O(1).

This implementation follows the same decomposition:

* a :class:`~repro.bits.bitbuffer.BitBuffer` tail of at most ``block_size``
  bits (the paper's ``B'`` / ``F1``);
* a list of frozen :class:`~repro.bitvector.rrr.RRRBitVector` blocks
  (the paper's ``F_i``);
* append-only cumulative arrays of block lengths and block popcounts, queried
  with binary search (the engineered stand-in for the constant-time partial
  sum structures; the log factor is over the number of blocks only).

It additionally supports the ``Init`` operation needed by the *append-only
Wavelet Trie* (Theorem 4.3): a constant run of bits can be prepended as a pure
offset (``offset_bit``/``offset_length``), exactly as the paper prescribes
("Init can be implemented simply by adding a left offset in each bitvector").
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator, List

from repro.bits import kernel
from repro.bits.bitbuffer import BitBuffer
from repro.bits.bitstring import Bits
from repro.bitvector.base import BitVector
from repro.bitvector.rrr import RRRBitVector
from repro.exceptions import OutOfBoundsError

__all__ = ["AppendOnlyBitVector"]

_DEFAULT_BLOCK = 1024


class AppendOnlyBitVector(BitVector):
    """Compressed bitvector supporting ``Append`` plus O(1)-style queries.

    Parameters
    ----------
    initial:
        Optional iterable of bits appended at construction time.
    block_size:
        Number of tail bits accumulated before freezing them into an RRR
        block (the paper's ``L = Theta(polylog n)``).
    offset_bit, offset_length:
        Implements ``Init(b, n)``: the bitvector behaves as if it started with
        ``offset_length`` copies of ``offset_bit`` (paper Theorem 4.3).
    """

    __slots__ = (
        "_block_size",
        "_blocks",
        "_cum_length",
        "_cum_ones",
        "_tail",
        "_offset_bit",
        "_offset_length",
    )

    def __init__(
        self,
        initial: Iterable[int] = (),
        block_size: int = _DEFAULT_BLOCK,
        offset_bit: int = 0,
        offset_length: int = 0,
    ) -> None:
        if block_size < 64:
            raise ValueError("block_size must be at least 64 bits")
        if offset_length < 0:
            raise ValueError("offset_length must be non-negative")
        self._block_size = block_size
        self._blocks: List[RRRBitVector] = []
        # _cum_length[i] / _cum_ones[i] = bits / ones in blocks[0..i-1]
        self._cum_length: List[int] = [0]
        self._cum_ones: List[int] = [0]
        self._tail = BitBuffer()
        self._offset_bit = 1 if offset_bit else 0
        self._offset_length = offset_length
        self.extend(initial)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def init_run(cls, bit: int, length: int, block_size: int = _DEFAULT_BLOCK) -> "AppendOnlyBitVector":
        """``Init(b, n)``: a bitvector equal to ``length`` copies of ``bit``.

        Runs in O(1) regardless of ``length`` -- the property (Remark 4.2)
        required by the append-only Wavelet Trie.
        """
        return cls(block_size=block_size, offset_bit=bit, offset_length=length)

    # ------------------------------------------------------------------
    # Size / structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._offset_length + self._cum_length[-1] + len(self._tail)

    @property
    def ones(self) -> int:
        offset_ones = self._offset_length if self._offset_bit else 0
        return offset_ones + self._cum_ones[-1] + self._tail.ones

    @property
    def block_count(self) -> int:
        """Number of frozen RRR blocks."""
        return len(self._blocks)

    @property
    def offset_length(self) -> int:
        """Length of the implicit constant prefix installed by ``Init``."""
        return self._offset_length

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def append(self, bit: int) -> None:
        """Append one bit at the end of the bitvector."""
        self._tail.append(1 if bit else 0)
        if len(self._tail) >= self._block_size:
            self._freeze_tail()

    def extend(self, bits: Iterable[int]) -> None:
        """Append every bit of ``bits`` in order (bulk ``Append``).

        The input is packed once through the kernel (O(k / 8)) and spliced
        into the tail block by block, so freezing happens from whole packed
        payloads instead of one big-int shift per bit.
        """
        if not isinstance(bits, Bits):
            bits = Bits.from_iterable(bits)
        self.append_bits(bits)

    def append_bits(self, bits: Bits) -> None:
        """Append a :class:`Bits` payload via word-level block slices.

        The payload is packed into words once (O(k / 8)); each block is then
        carved out with :func:`~repro.bits.kernel.extract_bits_value`, which
        touches only that block's words -- ``Bits.slice`` would shift the
        whole backing integer per block and make bulk appends quadratic.
        """
        total = len(bits)
        if total == 0:
            return
        words = kernel.pack_value(bits.value, total)
        pos = 0
        while pos < total:
            take = min(self._block_size - len(self._tail), total - pos)
            self._tail.append_int(
                kernel.extract_bits_value(words, pos, pos + take), take
            )
            pos += take
            if len(self._tail) >= self._block_size:
                self._freeze_tail()

    def _freeze_tail(self) -> None:
        """Freeze the tail buffer into a static RRR block."""
        block = RRRBitVector(self._tail.to_bits())
        self._blocks.append(block)
        self._cum_length.append(self._cum_length[-1] + len(block))
        self._cum_ones.append(self._cum_ones[-1] + block.ones)
        self._tail = BitBuffer()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def access(self, pos: int) -> int:
        self._check_pos(pos)
        if pos < self._offset_length:
            return self._offset_bit
        pos -= self._offset_length
        frozen = self._cum_length[-1]
        if pos < frozen:
            block_index = bisect_right(self._cum_length, pos) - 1
            return self._blocks[block_index].access(pos - self._cum_length[block_index])
        return self._tail[pos - frozen]

    def rank(self, bit: int, pos: int) -> int:
        self._check_bit(bit)
        self._check_rank_pos(pos)
        # Ones contributed by the Init offset prefix.
        in_offset = min(pos, self._offset_length)
        ones = in_offset if self._offset_bit else 0
        rest = pos - in_offset
        if rest > 0:
            frozen = self._cum_length[-1]
            if rest > frozen:
                ones += self._cum_ones[-1] + self._tail.rank(1, rest - frozen)
            else:
                block_index = bisect_right(self._cum_length, rest - 1) - 1
                ones += self._cum_ones[block_index]
                ones += self._blocks[block_index].rank(
                    1, rest - self._cum_length[block_index]
                )
        return ones if bit else pos - ones

    def select(self, bit: int, idx: int) -> int:
        self._check_bit(bit)
        total = self.count(bit)
        if not 0 <= idx < total:
            raise OutOfBoundsError(
                f"select({bit}, {idx}) out of range: only {total} occurrences"
            )
        # Offset prefix.
        offset_count = self._offset_length if self._offset_bit == bit else 0
        if idx < offset_count:
            return idx
        idx -= offset_count
        # Frozen blocks: binary search the cumulative counts of `bit` (for
        # zeros the count is derived on the fly as length - ones, so the
        # search stays O(log blocks) without materialising an array).
        if bit:
            cum = self._cum_ones
            block_index = bisect_right(cum, idx) - 1
            before = cum[block_index]
            frozen_total = cum[-1]
        else:
            lo, hi = 0, len(self._cum_length) - 1
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if self._cum_length[mid] - self._cum_ones[mid] <= idx:
                    lo = mid
                else:
                    hi = mid - 1
            block_index = lo
            before = self._cum_length[block_index] - self._cum_ones[block_index]
            frozen_total = self._cum_length[-1] - self._cum_ones[-1]
        if block_index < len(self._blocks):
            in_block = self._blocks[block_index].count(bit)
            if idx - before < in_block:
                return (
                    self._offset_length
                    + self._cum_length[block_index]
                    + self._blocks[block_index].select(bit, idx - before)
                )
        # Otherwise the occurrence is in the tail.
        idx -= frozen_total
        return (
            self._offset_length
            + self._cum_length[-1]
            + self._tail.select(bit, idx)
        )

    def iter_range(self, start: int, stop: int) -> Iterator[int]:
        self._check_range(start, stop)
        pos = start
        # Offset segment.
        while pos < stop and pos < self._offset_length:
            yield self._offset_bit
            pos += 1
        if pos >= stop:
            return
        frozen_end = self._offset_length + self._cum_length[-1]
        while pos < stop and pos < frozen_end:
            local = pos - self._offset_length
            block_index = bisect_right(self._cum_length, local) - 1
            block = self._blocks[block_index]
            block_start = self._offset_length + self._cum_length[block_index]
            upper = min(stop, block_start + len(block))
            yield from block.iter_range(pos - block_start, upper - block_start)
            pos = upper
        if pos < stop:
            tail_start = frozen_end
            for local in range(pos - tail_start, stop - tail_start):
                yield self._tail[local]

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Encoded size: frozen blocks + tail + directories + offset metadata."""
        blocks = sum(block.size_in_bits() for block in self._blocks)
        directories = (len(self._cum_length) + len(self._cum_ones)) * 64
        tail = len(self._tail) + 2 * 64
        return blocks + directories + tail + 2 * 64

    def payload_bits(self) -> int:
        """Compressed payload only (RRR payloads + raw tail)."""
        return sum(block.payload_bits() for block in self._blocks) + len(self._tail)

    def to_list(self) -> List[int]:
        return list(self.iter_range(0, len(self)))
