"""Append-only compressed bitvector (paper Section 4.1, Theorem 4.5).

The paper's construction keeps a small mutable tail (Lemma 4.6), a collection
of frozen RRR-compressed blocks, and partial-sum directories over the block
lengths and popcounts; appends are O(1) (amortised in Lemma 4.7, worst-case
after de-amortisation) and queries are O(1).

This implementation follows the same decomposition:

* a :class:`~repro.bits.bitbuffer.BitBuffer` tail of at most ``block_size``
  bits (the paper's ``B'`` / ``F1``);
* a *staged* payload being compressed incrementally -- the de-amortisation of
  Lemma 4.7: when the tail fills it is handed off to an
  :class:`~repro.bitvector.rrr.IncrementalRRRBuilder` and a fresh tail starts,
  with a bounded number of RRR blocks encoded per subsequent append, so no
  single ``append`` ever pays the O(block_size) stop-the-world freeze;
* a list of frozen :class:`~repro.bitvector.rrr.RRRBitVector` blocks
  (the paper's ``F_i``);
* append-only cumulative arrays of block lengths and block popcounts, queried
  with binary search (the engineered stand-in for the constant-time partial
  sum structures; the log factor is over the number of blocks only).

The logical bit order is ``offset | frozen blocks | staged | tail``.

It additionally supports the ``Init`` operation needed by the *append-only
Wavelet Trie* (Theorem 4.3): a constant run of bits can be prepended as a pure
offset (``offset_bit``/``offset_length``), exactly as the paper prescribes
("Init can be implemented simply by adding a left offset in each bitvector").
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator, List, Optional

from repro.bits import kernel
from repro.bits.bitbuffer import BitBuffer
from repro.bits.bitstring import Bits
from repro.bits.kernel import WORD
from repro.bitvector.base import BitVector, validate_select_indexes
from repro.bitvector.rrr import IncrementalRRRBuilder, RRRBitVector
from repro.exceptions import OutOfBoundsError

__all__ = ["AppendOnlyBitVector"]

_DEFAULT_BLOCK = 1024
_DEFAULT_FREEZE_BUDGET = 2


class AppendOnlyBitVector(BitVector):
    """Compressed bitvector supporting ``Append`` plus O(1)-style queries.

    Parameters
    ----------
    initial:
        Optional iterable of bits appended at construction time.
    block_size:
        Number of tail bits accumulated before freezing them into an RRR
        block (the paper's ``L = Theta(polylog n)``).
    offset_bit, offset_length:
        Implements ``Init(b, n)``: the bitvector behaves as if it started with
        ``offset_length`` copies of ``offset_bit`` (paper Theorem 4.3).
    freeze_blocks_per_append:
        De-amortisation budget: RRR blocks encoded from the staged payload per
        ``append`` call.  Any value >= 1 keeps worst-case append latency
        bounded (a stage of ``ceil(block_size / 63)`` RRR blocks always
        completes long before the fresh tail refills).  ``0`` restores the
        stop-the-world freeze (one O(block_size) pass when the tail fills) --
        kept for the latency benchmark's seed replica.
    """

    __slots__ = (
        "_block_size",
        "_blocks",
        "_cum_length",
        "_cum_ones",
        "_cum_zeros",
        "_tail",
        "_stage",
        "_freeze_budget",
        "_last_freeze_blocks",
        "_offset_bit",
        "_offset_length",
    )

    def __init__(
        self,
        initial: Iterable[int] = (),
        block_size: int = _DEFAULT_BLOCK,
        offset_bit: int = 0,
        offset_length: int = 0,
        freeze_blocks_per_append: int = _DEFAULT_FREEZE_BUDGET,
    ) -> None:
        if block_size < 64:
            raise ValueError("block_size must be at least 64 bits")
        if offset_length < 0:
            raise ValueError("offset_length must be non-negative")
        if freeze_blocks_per_append < 0:
            raise ValueError("freeze_blocks_per_append must be non-negative")
        self._block_size = block_size
        self._blocks: List[RRRBitVector] = []
        # _cum_length[i] / _cum_ones[i] / _cum_zeros[i] = bits / ones / zeros
        # in blocks[0..i-1]
        self._cum_length: List[int] = [0]
        self._cum_ones: List[int] = [0]
        self._cum_zeros: List[int] = [0]
        self._tail = BitBuffer()
        self._stage: Optional[IncrementalRRRBuilder] = None
        self._freeze_budget = freeze_blocks_per_append
        self._last_freeze_blocks = 0
        self._offset_bit = 1 if offset_bit else 0
        self._offset_length = offset_length
        self.extend(initial)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def init_run(cls, bit: int, length: int, block_size: int = _DEFAULT_BLOCK) -> "AppendOnlyBitVector":
        """``Init(b, n)``: a bitvector equal to ``length`` copies of ``bit``.

        Runs in O(1) regardless of ``length`` -- the property (Remark 4.2)
        required by the append-only Wavelet Trie.
        """
        return cls(block_size=block_size, offset_bit=bit, offset_length=length)

    # ------------------------------------------------------------------
    # Size / structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return (
            self._offset_length
            + self._cum_length[-1]
            + self._staged_length
            + len(self._tail)
        )

    @property
    def ones(self) -> int:
        offset_ones = self._offset_length if self._offset_bit else 0
        return (
            offset_ones + self._cum_ones[-1] + self._staged_ones + self._tail.ones
        )

    @property
    def block_count(self) -> int:
        """Number of frozen RRR blocks."""
        return len(self._blocks)

    @property
    def offset_length(self) -> int:
        """Length of the implicit constant prefix installed by ``Init``."""
        return self._offset_length

    @property
    def _staged_length(self) -> int:
        return self._stage.length if self._stage is not None else 0

    @property
    def _staged_ones(self) -> int:
        return self._stage.ones if self._stage is not None else 0

    @property
    def pending_freeze_bits(self) -> int:
        """Staged bits whose RRR encoding has not happened yet (0 when idle)."""
        return self._stage.pending_bits if self._stage is not None else 0

    @property
    def last_freeze_blocks(self) -> int:
        """RRR blocks encoded by the most recent ``append`` call.

        Exposed for the de-amortisation regression test: with a positive
        freeze budget this never exceeds the budget, i.e. no append pays the
        O(block_size / 63)-block stop-the-world freeze.
        """
        return self._last_freeze_blocks

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def append(self, bit: int) -> None:
        """Append one bit in O(1) amortised *and* bounded worst case.

        The tail append itself is O(1), and at most
        ``freeze_blocks_per_append`` RRR blocks of the staged payload are
        encoded -- the Lemma 4.7 de-amortisation.  A full tail is handed off
        to the incremental freezer (an O(tail / w) word-list move, no
        encoding) only once the previous stage has drained; until then the
        tail transiently overshoots ``block_size`` by at most the stage's
        remaining block count, so *no* append ever pays a synchronous
        O(block_size) freeze.  With a budget of 0 the freeze instead runs to
        completion inside the filling append (stop-the-world).
        """
        self._tail.append(1 if bit else 0)
        blocks = 0
        if self._stage is not None:
            blocks = self._advance_freeze()
        if self._stage is None and len(self._tail) >= self._block_size:
            self._stage_tail()
            if blocks == 0:
                blocks = self._advance_freeze()
        self._last_freeze_blocks = blocks

    def _advance_freeze(self) -> int:
        """Encode this append's share of the staged payload; returns blocks.

        Budget > 0: at most that many blocks (commit when the stage drains).
        Budget 0: the whole remaining stage, synchronously.
        """
        if self._freeze_budget:
            blocks = self._stage.encode_blocks(self._freeze_budget)
            if self._stage.done:
                self._commit_stage()
            return blocks
        return self._finish_stage()

    def extend(self, bits: Iterable[int]) -> None:
        """Append every bit of ``bits`` in order (bulk ``Append``).

        Amortised O(k / 8 + k / block_size * encode(block_size)): the input
        is packed once through the kernel and spliced into the tail block by
        block; full blocks are frozen synchronously (bulk callers pay the
        amortised cost by definition, so no staging is needed).
        """
        if not isinstance(bits, Bits):
            bits = Bits.from_iterable(bits)
        self.append_bits(bits)

    def append_bits(self, bits: Bits) -> None:
        """Append a :class:`Bits` payload via word-level block slices.

        The payload is packed into words once (O(k / 8)); each block is then
        carved out with :func:`~repro.bits.kernel.extract_bits_value`, which
        touches only that block's words -- ``Bits.slice`` would shift the
        whole backing integer per block and make bulk appends quadratic.
        """
        total = len(bits)
        if total == 0:
            return
        words = kernel.pack_value(bits.value, total)
        pos = 0
        # The tail can transiently exceed block_size while a stage drains
        # (see append); flush that state first so every carve below fits.
        if len(self._tail) >= self._block_size:
            self._stage_tail()
            self._finish_stage()
        while pos < total:
            take = min(self._block_size - len(self._tail), total - pos)
            self._tail.append_int(
                kernel.extract_bits_value(words, pos, pos + take), take
            )
            pos += take
            if len(self._tail) >= self._block_size:
                self._stage_tail()
                self._finish_stage()

    def _stage_tail(self) -> None:
        """Hand the full tail to the incremental freezer; start a fresh tail.

        O(tail / w): only the packed word list moves -- no combinatorial
        encoding happens here.  The bounded ``append`` path only calls this
        with no stage in flight; the bulk path may still meet one, and
        completes it first to preserve block order (bulk work is amortised
        by definition).
        """
        if self._stage is not None:
            self._finish_stage()
        self._stage = IncrementalRRRBuilder(
            self._tail.words(), len(self._tail), self._tail.ones
        )
        self._tail = BitBuffer()

    def _finish_stage(self) -> int:
        """Run the staged encode to completion; returns blocks encoded."""
        if self._stage is None:
            return 0
        blocks = 0
        while not self._stage.done:
            blocks += self._stage.encode_blocks(64)
        self._commit_stage()
        return blocks

    def _commit_stage(self) -> None:
        """Append the finished RRR block and its directory entries."""
        block = self._stage.finish()
        self._blocks.append(block)
        self._cum_length.append(self._cum_length[-1] + len(block))
        self._cum_ones.append(self._cum_ones[-1] + block.ones)
        self._cum_zeros.append(self._cum_length[-1] - self._cum_ones[-1])
        self._stage = None

    # ------------------------------------------------------------------
    # Staged-segment primitives (raw packed words, queried while in flight)
    # ------------------------------------------------------------------
    def _staged_access(self, pos: int) -> int:
        words = self._stage.words
        return (words[pos >> 6] >> (WORD - 1 - (pos & 63))) & 1

    def _staged_rank1(self, pos: int) -> int:
        return kernel.popcount_range(self._stage.words, 0, pos)

    def _staged_select(self, bit: int, idx: int) -> int:
        return kernel.select_bit_in_words(
            self._stage.words, self._stage.length, bit, idx
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def access(self, pos: int) -> int:
        self._check_pos(pos)
        if pos < self._offset_length:
            return self._offset_bit
        pos -= self._offset_length
        frozen = self._cum_length[-1]
        if pos < frozen:
            block_index = bisect_right(self._cum_length, pos) - 1
            return self._blocks[block_index].access(pos - self._cum_length[block_index])
        pos -= frozen
        staged = self._staged_length
        if pos < staged:
            return self._staged_access(pos)
        return self._tail[pos - staged]

    def rank(self, bit: int, pos: int) -> int:
        self._check_bit(bit)
        self._check_rank_pos(pos)
        # Ones contributed by the Init offset prefix.
        in_offset = min(pos, self._offset_length)
        ones = in_offset if self._offset_bit else 0
        rest = pos - in_offset
        if rest > 0:
            frozen = self._cum_length[-1]
            if rest > frozen:
                ones += self._cum_ones[-1]
                rest -= frozen
                staged = self._staged_length
                if rest > staged:
                    ones += self._staged_ones
                    ones += self._tail.rank(1, rest - staged)
                else:
                    ones += self._staged_rank1(rest)
            else:
                block_index = bisect_right(self._cum_length, rest - 1) - 1
                ones += self._cum_ones[block_index]
                ones += self._blocks[block_index].rank(
                    1, rest - self._cum_length[block_index]
                )
        return ones if bit else pos - ones

    def select(self, bit: int, idx: int) -> int:
        self._check_bit(bit)
        total = self.count(bit)
        if not 0 <= idx < total:
            raise OutOfBoundsError(
                f"select({bit}, {idx}) out of range: only {total} occurrences"
            )
        # Offset prefix.
        offset_count = self._offset_length if self._offset_bit == bit else 0
        if idx < offset_count:
            return idx
        idx -= offset_count
        # Frozen blocks: binary search the cumulative counts of `bit` (the
        # zeros directory is maintained append-only alongside the ones).
        cum = self._cum_ones if bit else self._cum_zeros
        block_index = bisect_right(cum, idx) - 1
        before = cum[block_index]
        frozen_total = cum[-1]
        if block_index < len(self._blocks):
            in_block = self._blocks[block_index].count(bit)
            if idx - before < in_block:
                return (
                    self._offset_length
                    + self._cum_length[block_index]
                    + self._blocks[block_index].select(bit, idx - before)
                )
        # Staged segment, then the tail.
        idx -= frozen_total
        staged_count = (
            self._staged_ones if bit else self._staged_length - self._staged_ones
        )
        frozen_start = self._offset_length + self._cum_length[-1]
        if idx < staged_count:
            return frozen_start + self._staged_select(bit, idx)
        idx -= staged_count
        return frozen_start + self._staged_length + self._tail.select(bit, idx)

    def select_many(self, bit: int, indexes) -> List[int]:
        """``select(bit, idx)`` for each index, batch-amortised per segment.

        The indexes are sorted once and routed through the segments in order
        (offset prefix, frozen blocks, staged payload, tail); queries landing
        in the same frozen block are answered by that block's RRR
        ``select_many`` (one decode per touched block), so the per-query cost
        amortises to O(log q) sort work plus the shared directory walks
        instead of one binary search + block scan each.
        """
        self._check_bit(bit)
        indexes = validate_select_indexes(indexes, self.count(bit), bit)
        if not indexes:
            return []
        order = sorted(range(len(indexes)), key=indexes.__getitem__)
        out = [0] * len(indexes)
        offset_count = self._offset_length if self._offset_bit == bit else 0
        frozen_cum = self._cum_ones if bit else self._cum_zeros
        frozen_total = frozen_cum[-1]
        staged_count = (
            self._staged_ones if bit else self._staged_length - self._staged_ones
        )
        frozen_start = self._offset_length + self._cum_length[-1]
        n_queries = len(order)
        at = 0
        # Offset prefix: the idx-th occurrence *is* position idx.
        while at < n_queries and indexes[order[at]] < offset_count:
            out[order[at]] = indexes[order[at]]
            at += 1
        # Frozen blocks: group queries per block, one batched select per block.
        block_index = 0
        while at < n_queries:
            idx = indexes[order[at]] - offset_count
            if idx >= frozen_total:
                break
            block_index = bisect_right(frozen_cum, idx, block_index + 1) - 1
            before = frozen_cum[block_index]
            upper = frozen_cum[block_index + 1]
            group_end = at + 1
            while (
                group_end < n_queries
                and indexes[order[group_end]] - offset_count < upper
            ):
                group_end += 1
            base = self._offset_length + self._cum_length[block_index]
            local = self._blocks[block_index].select_many(
                bit,
                [indexes[order[i]] - offset_count - before for i in range(at, group_end)],
            )
            for i, position in zip(range(at, group_end), local):
                out[order[i]] = base + position
            at = group_end
        # Staged payload, then the tail (both bounded by block_size bits).
        # The tail's padded word list is materialised once for the whole
        # batch rather than once per tail-landing query.
        tail_words = None
        tail_length = len(self._tail)
        while at < n_queries:
            idx = indexes[order[at]] - offset_count - frozen_total
            if idx < staged_count:
                out[order[at]] = frozen_start + self._staged_select(bit, idx)
            else:
                if tail_words is None:
                    tail_words = self._tail.words()
                out[order[at]] = (
                    frozen_start
                    + self._staged_length
                    + kernel.select_bit_in_words(
                        tail_words, tail_length, bit, idx - staged_count
                    )
                )
            at += 1
        return out

    def iter_range(self, start: int, stop: int) -> Iterator[int]:
        self._check_range(start, stop)
        pos = start
        # Offset segment.
        while pos < stop and pos < self._offset_length:
            yield self._offset_bit
            pos += 1
        if pos >= stop:
            return
        frozen_end = self._offset_length + self._cum_length[-1]
        while pos < stop and pos < frozen_end:
            local = pos - self._offset_length
            block_index = bisect_right(self._cum_length, local) - 1
            block = self._blocks[block_index]
            block_start = self._offset_length + self._cum_length[block_index]
            upper = min(stop, block_start + len(block))
            yield from block.iter_range(pos - block_start, upper - block_start)
            pos = upper
        staged_end = frozen_end + self._staged_length
        if pos < stop and pos < staged_end:
            upper = min(stop, staged_end)
            yield from kernel.broadword_iter_words(
                self._stage.words, pos - frozen_end, upper - frozen_end
            )
            pos = upper
        if pos < stop:
            for local in range(pos - staged_end, stop - staged_end):
                yield self._tail[local]

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Encoded size: frozen blocks + staged words + tail + directories."""
        blocks = sum(block.size_in_bits() for block in self._blocks)
        directories = (
            len(self._cum_length) + len(self._cum_ones) + len(self._cum_zeros)
        ) * 64
        staged = len(self._stage.words) * WORD if self._stage is not None else 0
        tail = len(self._tail) + 2 * 64
        return blocks + directories + staged + tail + 2 * 64

    def payload_bits(self) -> int:
        """Compressed payload only (RRR payloads + staged words + raw tail)."""
        return (
            sum(block.payload_bits() for block in self._blocks)
            + self._staged_length
            + len(self._tail)
        )

    def to_list(self) -> List[int]:
        return list(self.iter_range(0, len(self)))
