"""Elias-Fano monotone sequences and sparse bitvectors.

The static Wavelet Trie (paper Section 3) delimits the concatenated node
labels ``L`` and the concatenated RRR encodings with the partial-sum structure
of Raman, Raman & Rao, which costs ``B(e, |L| + e) + o(...)`` bits.  The
quasi-succinct Elias-Fano representation achieves the same bound up to lower
order terms and is the standard engineering choice, so it is what we build
here:

* :class:`EliasFanoSequence` stores a non-decreasing sequence of integers with
  ``n (2 + log(u / n))`` bits and O(1) ``select`` (access by index);
* :class:`SparseBitVector` exposes the positions of the 1s of a sparse
  bitvector through the same machinery, with full rank/select support.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from repro.bits.bitbuffer import BitBuffer
from repro.bits.bitstring import Bits
from repro.bits.kernel import as_int_list, one_positions, pack_value
from repro.bits.packed import PackedIntVector
from repro.bitvector.base import StaticBitVector
from repro.bitvector.plain import PlainBitVector
from repro.exceptions import OutOfBoundsError

__all__ = ["EliasFanoSequence", "SparseBitVector"]


class EliasFanoSequence:
    """Quasi-succinct encoding of a monotone non-decreasing integer sequence.

    Each value is split into ``low_width`` low-order bits, stored verbatim in a
    packed array, and high-order bits, stored as a unary-coded sequence of
    bucket gaps in a plain bitvector with rank/select support.
    """

    __slots__ = ("_n", "_universe", "_low_width", "_low", "_high")

    def __init__(self, values: Sequence[int], universe: int | None = None) -> None:
        values = list(values)
        for earlier, later in zip(values, values[1:]):
            if later < earlier:
                raise ValueError("EliasFanoSequence requires a non-decreasing input")
        if values and values[0] < 0:
            raise ValueError("values must be non-negative")
        self._n = len(values)
        self._universe = universe if universe is not None else (values[-1] + 1 if values else 1)
        if values and values[-1] >= self._universe:
            raise ValueError("universe must exceed the largest value")
        if self._n == 0:
            self._low_width = 0
            self._low = PackedIntVector(0)
            self._high = PlainBitVector()
            return
        # Choose the textbook low-part width floor(log2(u / n)).
        ratio = max(1, self._universe // self._n)
        self._low_width = max(0, ratio.bit_length() - 1)
        low = PackedIntVector(self._low_width)
        high_bits = BitBuffer()
        previous_bucket = 0
        mask = (1 << self._low_width) - 1
        for value in values:
            low.append(value & mask if self._low_width else 0)
            bucket = value >> self._low_width
            high_bits.append_run(0, bucket - previous_bucket)
            high_bits.append(1)
            previous_bucket = bucket
        self._low = low
        self._high = PlainBitVector(high_bits.to_bits())

    # ------------------------------------------------------------------
    # Frozen-image (RWT2) exchange -- see docs/ARCHITECTURE.md, "Storage"
    # ------------------------------------------------------------------
    def to_words_image(self, sink, prefix: str) -> dict:
        """Write the low words and the high bitvector into an image sink.

        One ``low`` section holds the packed low halves; the high bitvector
        contributes its own sections under ``prefix + "high."``.  Returns
        the meta dict :meth:`from_words_image` needs.
        """
        sink.add_u64(prefix + "low", self._low._words)
        return {
            "n": self._n,
            "universe": self._universe,
            "low_width": self._low_width,
            "high": self._high.to_words_image(sink, prefix + "high."),
        }

    @classmethod
    def from_words_image(cls, image, prefix: str, meta: dict) -> "EliasFanoSequence":
        """Open from a frozen image; low and high halves alias the buffer."""
        self = cls.__new__(cls)
        self._n = int(meta["n"])
        self._universe = int(meta["universe"])
        self._low_width = int(meta["low_width"])
        self._low = PackedIntVector.from_words(
            self._low_width, self._n, image.words(prefix + "low")
        )
        self._high = PlainBitVector.from_words_image(
            image, prefix + "high.", meta["high"]
        )
        return self

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def universe(self) -> int:
        """Exclusive upper bound on the stored values."""
        return self._universe

    def __getitem__(self, index: int) -> int:
        return self.select(index)

    def select(self, index: int) -> int:
        """The ``index``-th value (0-based)."""
        if not 0 <= index < self._n:
            raise OutOfBoundsError(f"index {index} out of range for {self._n} values")
        high = self._high.select1(index) - index
        low = self._low[index] if self._low_width else 0
        return (high << self._low_width) | low

    def rank(self, value: int) -> int:
        """Number of stored values strictly smaller than ``value``."""
        if value <= 0:
            return 0
        if self._n == 0:
            return 0
        # Binary search; the sequence is monotone.
        lo, hi = 0, self._n
        while lo < hi:
            mid = (lo + hi) // 2
            if self.select(mid) < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def predecessor(self, value: int) -> int:
        """Largest index ``i`` with ``self[i] <= value``; raises if none exists."""
        count = self.rank(value + 1)
        if count == 0:
            raise OutOfBoundsError(f"no value <= {value}")
        return count - 1

    def __iter__(self) -> Iterator[int]:
        for index in range(self._n):
            yield self.select(index)

    def to_list(self) -> List[int]:
        """Materialise the sequence."""
        return list(self)

    def size_in_bits(self) -> int:
        """Total encoded size in bits."""
        return self._low.size_in_bits() + self._high.size_in_bits() + 2 * 64


class SparseBitVector(StaticBitVector):
    """A bitvector represented by the Elias-Fano encoding of its 1 positions.

    Efficient when the density of 1s is low, e.g. block delimiters; supports
    the full FID interface.
    """

    __slots__ = ("_length", "_positions")

    def __init__(self, length: int, one_positions: Iterable[int]) -> None:
        positions = sorted(one_positions)
        if positions and (positions[0] < 0 or positions[-1] >= length):
            raise OutOfBoundsError("a 1-position is outside [0, length)")
        for earlier, later in zip(positions, positions[1:]):
            if earlier == later:
                raise ValueError("duplicate 1-position")
        self._length = length
        self._positions = EliasFanoSequence(positions, universe=max(length, 1))

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "SparseBitVector":
        """Build from a :class:`Bits` payload or an explicit iterable of bits."""
        if isinstance(bits, Bits):
            # Kernel path: extract the 1-positions bytewise from packed words.
            words = pack_value(bits.value, len(bits))
            return cls(len(bits), as_int_list(one_positions(words)))
        ones = []
        length = 0
        for position, bit in enumerate(bits):
            if bit:
                ones.append(position)
            length += 1
        return cls(length, ones)

    def __len__(self) -> int:
        return self._length

    @property
    def ones(self) -> int:
        return len(self._positions)

    def access(self, pos: int) -> int:
        self._check_pos(pos)
        rank_after = self._positions.rank(pos + 1)
        rank_before = self._positions.rank(pos)
        return rank_after - rank_before

    def rank(self, bit: int, pos: int) -> int:
        self._check_bit(bit)
        self._check_rank_pos(pos)
        ones = self._positions.rank(pos)
        return ones if bit else pos - ones

    def select(self, bit: int, idx: int) -> int:
        self._check_bit(bit)
        if bit:
            if not 0 <= idx < len(self._positions):
                raise OutOfBoundsError(
                    f"select(1, {idx}) out of range: only {len(self._positions)} ones"
                )
            return self._positions.select(idx)
        zeros = self._length - len(self._positions)
        if not 0 <= idx < zeros:
            raise OutOfBoundsError(
                f"select(0, {idx}) out of range: only {zeros} zeros"
            )
        # Binary search over positions: zeros before position p = p - rank1(p).
        lo, hi = 0, self._length - 1
        while lo < hi:
            mid = (lo + hi) // 2
            zeros_through_mid = (mid + 1) - self._positions.rank(mid + 1)
            if zeros_through_mid <= idx:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def size_in_bits(self) -> int:
        return self._positions.size_in_bits() + 64
