"""RRR compressed bitvector (Raman, Raman & Rao).

The encoding splits the input into fixed-size blocks; each block is stored as
a pair ``(class, offset)`` where ``class`` is the block popcount and ``offset``
is the index of the block in the lexicographic enumeration of all blocks with
that popcount.  The total payload is ``B(m, n) + o(n)`` bits (paper Section 2),
and with sampled superblock directories ``rank``/``select``/``access`` run in
time proportional to the sampling rate (a constant).

This is the static bitvector used inside the static Wavelet Trie
(Theorem 3.7) and as the frozen-block representation inside the append-only
bitvector (Theorem 4.5).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator, List, Union

from repro.bits import kernel
from repro.bits.bitstring import Bits
from repro.bits.codes import (
    BitWriter,
    combinatorial_bit_at,
    combinatorial_prefix_popcount,
    combinatorial_rank,
    combinatorial_unrank,
    offset_width,
    offset_width_table,
)
from repro.bits.kernel import (
    extract_bits_value,
    invert_word,
    iter_word_bits,
    pack_value,
    select_in_word,
    select_in_word_many,
)
from repro.bitvector.base import StaticBitVector, validate_select_indexes
from repro.exceptions import OutOfBoundsError

__all__ = ["RRRBitVector", "IncrementalRRRBuilder"]

_DEFAULT_BLOCK = 63
_DEFAULT_SAMPLE = 8


class RRRBitVector(StaticBitVector):
    """Static compressed bitvector with (class, offset) block encoding.

    Parameters
    ----------
    bits:
        The payload, as a :class:`Bits` value or any iterable of 0/1.
    block_size:
        Bits per block; 63 keeps every offset within a machine word.
    sample_rate:
        Number of blocks per superblock sample.  Larger values compress the
        directory further at the cost of a longer sequential scan per query.
    """

    __slots__ = (
        "_length",
        "_block_size",
        "_sample_rate",
        "_class_list",
        "_offset_words",
        "_offset_len",
        "_offset_starts",
        "_sample_rank",
        "_sample_offset_pos",
        "_ones",
        "_width_by_class",
    )

    def __init__(
        self,
        bits: Union[Bits, Iterable[int]] = (),
        block_size: int = _DEFAULT_BLOCK,
        sample_rate: int = _DEFAULT_SAMPLE,
    ) -> None:
        if not isinstance(bits, Bits):
            bits = Bits.from_iterable(bits)
        # Pack once into 64-bit words so per-block extraction is O(1) instead
        # of one O(n / 64) big-int slice per block.
        words = pack_value(bits.value, len(bits))
        self._build_from_words(words, len(bits), block_size, sample_rate)

    @classmethod
    def from_words(
        cls,
        words: List[int],
        length: int,
        block_size: int = _DEFAULT_BLOCK,
        sample_rate: int = _DEFAULT_SAMPLE,
    ) -> "RRRBitVector":
        """Build from a kernel packed word sequence (list or word array).

        The array-aware construction path: bulk producers hand the words
        straight to the block encoder, skipping any big-int or per-bit
        round trip.
        """
        self = cls.__new__(cls)
        self._build_from_words(
            kernel.as_int_list(words), length, block_size, sample_rate
        )
        return self

    def _build_from_words(
        self, words: List[int], length: int, block_size: int, sample_rate: int
    ) -> None:
        if block_size < 1 or block_size > 63:
            raise ValueError("block_size must be between 1 and 63")
        if sample_rate < 1:
            raise ValueError("sample_rate must be positive")
        self._length = length
        self._block_size = block_size
        self._sample_rate = sample_rate
        # Per-class offset widths: the pure-Python stand-in for the
        # four-Russians tables, kept per instance for hot-path list lookups.
        self._width_by_class = offset_width_table(block_size)

        writer = BitWriter()
        sample_rank: List[int] = []
        sample_offset_pos: List[int] = []
        ones_so_far = 0

        # Bulk class computation through the kernel backend (one
        # unpackbits + reduceat pass under numpy); the per-block offset
        # encode below then only extracts blocks that carry an offset, so
        # all-zero/all-one blocks never pay an extraction.
        classes = kernel.as_int_list(
            kernel.block_popcounts(words, length, block_size)
        )
        widths = self._width_by_class
        for block_index, cls in enumerate(classes):
            if block_index % sample_rate == 0:
                sample_rank.append(ones_so_far)
                sample_offset_pos.append(len(writer))
            ones_so_far += cls
            off_w = widths[cls]
            if off_w:
                start = block_index * block_size
                stop = min(start + block_size, length)
                # Right-pad the final partial block with zeros to full width
                # so the class/offset maths always works on
                # ``block_size``-bit blocks.
                value = extract_bits_value(words, start, stop) << (
                    block_size - (stop - start)
                )
                writer.write_int(
                    combinatorial_rank(value, block_size, cls), off_w
                )
        # Flat per-block classes: block walks index the list directly (all
        # class values are CPython-cached small ints, so this costs one
        # pointer per block); the space accounting still charges the packed
        # width, see _classes_bits.
        self._class_list = classes
        offsets = writer.to_bits()
        # The offset stream is also kept word-packed: per-query decodes slice
        # two words in O(1) instead of shifting one huge big-int payload.
        self._offset_words = pack_value(offsets.value, len(offsets))
        self._offset_len = len(offsets)
        self._sample_rank = sample_rank
        self._sample_offset_pos = sample_offset_pos
        self._ones = ones_so_far
        self._offset_starts = None  # computed lazily only for repr/debug

    # ------------------------------------------------------------------
    # Frozen-image (RWT2) exchange -- see docs/ARCHITECTURE.md, "Storage"
    # ------------------------------------------------------------------
    def to_words_image(self, sink, prefix: str) -> dict:
        """Write classes, offset words and the sampled directories to a sink.

        Sections: ``cls`` (one byte per block), ``off`` (the packed offset
        stream), ``srank``/``spos`` (the superblock samples).  The per-class
        width table is recomputed on load (it only depends on the block
        size), so no derived state is stored.  Returns the meta dict
        :meth:`from_words_image` needs.
        """
        sink.add_bytes(prefix + "cls", bytes(self._class_list))
        sink.add_u64(prefix + "off", self._offset_words)
        sink.add_i64(prefix + "srank", self._sample_rank)
        sink.add_i64(prefix + "spos", self._sample_offset_pos)
        return {
            "length": self._length,
            "block_size": self._block_size,
            "sample_rate": self._sample_rate,
            "ones": self._ones,
            "offset_len": self._offset_len,
        }

    @classmethod
    def from_words_image(cls, image, prefix: str, meta: dict) -> "RRRBitVector":
        """Open from a frozen image; no block is re-encoded or decoded.

        The class bytes, offset words and sample directories alias the
        image's mapped bytes read-only; only the O(block_size) width table
        is recomputed.  The views yield python ints, so every combinatorial
        decode path works unchanged.
        """
        self = cls.__new__(cls)
        self._length = int(meta["length"])
        self._block_size = int(meta["block_size"])
        self._sample_rate = int(meta["sample_rate"])
        self._ones = int(meta["ones"])
        self._offset_len = int(meta["offset_len"])
        self._width_by_class = offset_width_table(self._block_size)
        self._class_list = image.section(prefix + "cls")
        self._offset_words = image.words(prefix + "off")
        self._sample_rank = image.int64(prefix + "srank")
        self._sample_offset_pos = image.int64(prefix + "spos")
        self._offset_starts = None
        return self

    @property
    def block_size(self) -> int:
        """Bits per block."""
        return self._block_size

    def __len__(self) -> int:
        return self._length

    @property
    def ones(self) -> int:
        return self._ones

    # ------------------------------------------------------------------
    def _decode_block(self, block_index: int, offset_pos: int) -> int:
        """Decode block ``block_index`` given the bit position of its offset."""
        cls = self._class_list[block_index]
        off_w = self._width_by_class[cls]
        if off_w == 0:
            # The block is all zeros or all ones.
            return ((1 << self._block_size) - 1) if cls == self._block_size else 0
        offset_value = extract_bits_value(
            self._offset_words, offset_pos, offset_pos + off_w
        )
        return combinatorial_unrank(offset_value, self._block_size, cls)

    def _walk_to_block(self, block_index: int):
        """Return ``(rank_before, offset_pos)`` for the given block."""
        sample_index = block_index // self._sample_rate
        rank_before = self._sample_rank[sample_index]
        offset_pos = self._sample_offset_pos[sample_index]
        widths = self._width_by_class
        classes = self._class_list
        for current in range(sample_index * self._sample_rate, block_index):
            cls = classes[current]
            rank_before += cls
            offset_pos += widths[cls]
        return rank_before, offset_pos

    # ------------------------------------------------------------------
    def access(self, pos: int) -> int:
        self._check_pos(pos)
        block_index, offset = divmod(pos, self._block_size)
        _, offset_pos = self._walk_to_block(block_index)
        cls = self._class_list[block_index]
        off_w = self._width_by_class[cls]
        if off_w == 0:
            return 1 if cls == self._block_size else 0
        offset_value = extract_bits_value(
            self._offset_words, offset_pos, offset_pos + off_w
        )
        # Truncated enumeration descent: O(offset) instead of decoding the
        # whole block.
        return combinatorial_bit_at(offset_value, self._block_size, cls, offset)

    def rank(self, bit: int, pos: int) -> int:
        self._check_bit(bit)
        self._check_rank_pos(pos)
        if pos == 0:
            return 0
        block_index, offset = divmod(pos, self._block_size)
        if block_index >= len(self._class_list):
            # pos == length and length is a multiple of block_size
            ones = self._ones
            return ones if bit else pos - ones
        rank_before, offset_pos = self._walk_to_block(block_index)
        ones = rank_before
        if offset:
            cls = self._class_list[block_index]
            off_w = self._width_by_class[cls]
            if off_w == 0:
                # All-zeros or all-ones block: the prefix popcount is free.
                ones += offset if cls == self._block_size else 0
            else:
                offset_value = extract_bits_value(
                    self._offset_words, offset_pos, offset_pos + off_w
                )
                ones += combinatorial_prefix_popcount(
                    offset_value, self._block_size, cls, offset
                )
        return ones if bit else pos - ones

    def select(self, bit: int, idx: int) -> int:
        self._check_bit(bit)
        total = self._ones if bit else self._length - self._ones
        if not 0 <= idx < total:
            raise OutOfBoundsError(
                f"select({bit}, {idx}) out of range: only {total} occurrences"
            )
        # Binary search the superblock sample, then scan blocks.
        if bit:
            sample_index = bisect_right(self._sample_rank, idx) - 1
            seen = self._sample_rank[sample_index]
        else:
            lo, hi = 0, len(self._sample_rank) - 1
            while lo < hi:
                mid = (lo + hi + 1) // 2
                zeros_before = (
                    mid * self._sample_rate * self._block_size
                    - self._sample_rank[mid]
                )
                if zeros_before <= idx:
                    lo = mid
                else:
                    hi = mid - 1
            sample_index = lo
            seen = (
                sample_index * self._sample_rate * self._block_size
                - self._sample_rank[sample_index]
            )
        block_index = sample_index * self._sample_rate
        offset_pos = self._sample_offset_pos[sample_index]
        classes = self._class_list
        n_blocks = len(classes)
        while block_index < n_blocks:
            cls = classes[block_index]
            block_start = block_index * self._block_size
            block_len = min(self._block_size, self._length - block_start)
            in_block = cls if bit else block_len - cls
            if seen + in_block > idx:
                value = self._decode_block(block_index, offset_pos)
                # Left-align the block into a 64-bit word and finish with the
                # kernel's table-driven in-word select (no per-bit scan).
                word = value << (64 - self._block_size)
                if not bit:
                    word = invert_word(word, block_len)
                return block_start + select_in_word(word, idx - seen)
            seen += in_block
            offset_pos += self._width_by_class[cls]
            block_index += 1
        raise AssertionError("select directory inconsistent")  # pragma: no cover

    def _sample_count_before(self, bit: int, sample_index: int) -> int:
        """Occurrences of ``bit`` before sample ``sample_index``."""
        if bit:
            return self._sample_rank[sample_index]
        return (
            sample_index * self._sample_rate * self._block_size
            - self._sample_rank[sample_index]
        )

    def _sample_before_count(self, bit: int, idx: int, lo: int = 0) -> int:
        """Largest sample whose ``bit``-count before it is <= ``idx``."""
        if bit:
            return bisect_right(self._sample_rank, idx, lo) - 1
        hi = len(self._sample_rank) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._sample_count_before(0, mid) <= idx:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def select_many(self, bit: int, indexes) -> List[int]:
        """``select(bit, idx)`` for each index, batch-amortised.

        The indexes are sorted once and the block directory is walked
        monotonically: sample jumps only happen when the next query overshoots
        the current sample's region, each touched block is class/offset
        decoded exactly once, and all queries inside a block are finished by
        the kernel's sorted in-word multi-select.  Amortised O(q log q + B)
        where B is the number of touched blocks, against one directory search
        plus block scan *per query* for the scalar loop.
        """
        self._check_bit(bit)
        total = self._ones if bit else self._length - self._ones
        indexes = validate_select_indexes(indexes, total, bit)
        if not indexes:
            return []
        order = sorted(range(len(indexes)), key=indexes.__getitem__)
        out = [0] * len(indexes)
        classes = self._class_list
        widths = self._width_by_class
        block_size = self._block_size
        sample_rate = self._sample_rate
        n_samples = len(self._sample_rank)
        block_index = seen = offset_pos = 0
        jump_needed = True
        at = 0
        n_queries = len(order)
        while at < n_queries:
            idx = indexes[order[at]]
            next_sample = block_index // sample_rate + 1
            if jump_needed or (
                next_sample < n_samples
                and self._sample_count_before(bit, next_sample) <= idx
            ):
                sample_index = self._sample_before_count(bit, idx)
                block_index = sample_index * sample_rate
                seen = self._sample_count_before(bit, sample_index)
                offset_pos = self._sample_offset_pos[sample_index]
                jump_needed = False
            while True:
                cls = classes[block_index]
                block_start = block_index * block_size
                block_len = min(block_size, self._length - block_start)
                in_block = cls if bit else block_len - cls
                if seen + in_block > idx:
                    break
                seen += in_block
                offset_pos += widths[cls]
                block_index += 1
            group_end = at + 1
            while (
                group_end < n_queries
                and indexes[order[group_end]] < seen + in_block
            ):
                group_end += 1
            word = self._decode_block(block_index, offset_pos) << (
                64 - block_size
            )
            if not bit:
                word = invert_word(word, block_len)
            offsets = select_in_word_many(
                word,
                [indexes[order[i]] - seen for i in range(at, group_end)],
            )
            for i, offset in zip(range(at, group_end), offsets):
                out[order[i]] = block_start + offset
            seen += in_block
            offset_pos += widths[cls]
            block_index += 1
            at = group_end
        return out

    def iter_range(self, start: int, stop: int) -> Iterator[int]:
        self._check_range(start, stop)
        if start >= stop:
            return
        block_index, offset = divmod(start, self._block_size)
        _, offset_pos = self._walk_to_block(block_index)
        pos = start
        while pos < stop:
            value = self._decode_block(block_index, offset_pos)
            block_start = block_index * self._block_size
            block_len = min(self._block_size, self._length - block_start)
            upper = min(stop - block_start, block_len)
            yield from iter_word_bits(
                value << (64 - self._block_size), pos - block_start, upper
            )
            pos = block_start + upper
            offset_pos += self._width_by_class[self._class_list[block_index]]
            block_index += 1

    # ------------------------------------------------------------------
    @classmethod
    def _from_block_stream(
        cls,
        length: int,
        block_size: int,
        sample_rate: int,
        classes: List[int],
        offsets: Bits,
    ) -> "RRRBitVector":
        """Assemble an instance from pre-encoded per-block classes + offsets.

        Used by :class:`IncrementalRRRBuilder` to finish a de-amortised
        construction: the expensive combinatorial encoding already happened
        block by block, so only the O(n_blocks) sampled directories remain.
        """
        self = cls.__new__(cls)
        self._length = length
        self._block_size = block_size
        self._sample_rate = sample_rate
        self._width_by_class = offset_width_table(block_size)
        sample_rank: List[int] = []
        sample_offset_pos: List[int] = []
        ones_so_far = 0
        offset_pos = 0
        widths = self._width_by_class
        for block_index, block_class in enumerate(classes):
            if block_index % sample_rate == 0:
                sample_rank.append(ones_so_far)
                sample_offset_pos.append(offset_pos)
            ones_so_far += block_class
            offset_pos += widths[block_class]
        self._class_list = list(classes)
        self._offset_words = pack_value(offsets.value, len(offsets))
        self._offset_len = len(offsets)
        self._sample_rank = sample_rank
        self._sample_offset_pos = sample_offset_pos
        self._ones = ones_so_far
        self._offset_starts = None
        return self

    # ------------------------------------------------------------------
    def _classes_bits(self) -> int:
        """Size the class array is charged at: packed width, word-rounded."""
        width = max(1, self._block_size.bit_length())
        return ((len(self._class_list) * width + 63) // 64) * 64

    def size_in_bits(self) -> int:
        """Total encoded size: classes + offsets + sampled directories."""
        classes = self._classes_bits()
        offsets = self._offset_len
        samples = (len(self._sample_rank) + len(self._sample_offset_pos)) * 64
        return classes + offsets + samples

    def payload_bits(self) -> int:
        """Bits of the (class, offset) payload only, the ``B(m, n)`` part."""
        return self._classes_bits() + self._offset_len

    def compressed_payload_bits(self) -> int:
        """The offset stream alone (the entropy-proportional part)."""
        return self._offset_len


class IncrementalRRRBuilder:
    """De-amortised RRR construction over a fixed packed-word payload.

    The paper de-amortises the append-only bitvector's tail freeze (Lemma 4.7
    -> Theorem 4.5 worst case) by running the compression of the previous
    tail *incrementally* while new bits accumulate in a fresh one.  This
    builder is that mechanism: it owns a frozen payload (kernel packed words)
    and encodes a *bounded* number of RRR blocks per :meth:`encode_blocks`
    call, so the caller can spread the combinatorial work over many appends
    instead of paying one O(payload) stop-the-world pass.

    While the build is in flight the raw payload stays queryable through
    :attr:`words` / :attr:`length` / :attr:`ones`.
    """

    __slots__ = (
        "words",
        "length",
        "ones",
        "_block_size",
        "_sample_rate",
        "_cursor",
        "_classes",
        "_writer",
        "_width_by_class",
    )

    def __init__(
        self,
        words: List[int],
        length: int,
        ones: int,
        block_size: int = _DEFAULT_BLOCK,
        sample_rate: int = _DEFAULT_SAMPLE,
    ) -> None:
        self.words = words
        self.length = length
        self.ones = ones
        self._block_size = block_size
        self._sample_rate = sample_rate
        self._cursor = 0
        self._classes: List[int] = []
        self._writer = BitWriter()
        self._width_by_class = offset_width_table(block_size)

    @property
    def done(self) -> bool:
        """True once every block of the payload has been encoded."""
        return self._cursor >= self.length

    @property
    def pending_bits(self) -> int:
        """Payload bits not yet encoded."""
        return max(0, self.length - self._cursor)

    def encode_blocks(self, max_blocks: int) -> int:
        """Encode up to ``max_blocks`` further RRR blocks; returns how many.

        Each block costs one O(1)-word extraction plus one combinatorial
        rank -- the bounded unit of freeze work per append.
        """
        encoded = 0
        block_size = self._block_size
        widths = self._width_by_class
        while encoded < max_blocks and self._cursor < self.length:
            start = self._cursor
            stop = min(start + block_size, self.length)
            width = stop - start
            value = extract_bits_value(self.words, start, stop) << (
                block_size - width
            )
            block_class = value.bit_count()
            self._classes.append(block_class)
            offset_width = widths[block_class]
            if offset_width:
                self._writer.write_int(
                    combinatorial_rank(value, block_size, block_class),
                    offset_width,
                )
            self._cursor = stop
            encoded += 1
        return encoded

    def finish(self) -> RRRBitVector:
        """Encode any remaining blocks and assemble the static block."""
        while not self.done:
            self.encode_blocks(64)
        return RRRBitVector._from_block_stream(
            self.length,
            self._block_size,
            self._sample_rate,
            self._classes,
            self._writer.to_bits(),
        )
