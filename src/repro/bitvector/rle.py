"""Static run-length encoded bitvector with Elias gamma coded runs.

``RLE + gamma`` is the encoding the paper adopts for the node bitvectors of the
fully dynamic Wavelet Trie (Section 4.2, following Foschini et al.).  This
module provides the *static* variant, used for space comparisons and as the
frozen representation in the ablation benchmark; the dynamic variant lives in
:mod:`repro.bitvector.dynamic`.

The bitvector ``0^{r0} 1^{r1} 0^{r2} ...`` is stored as the gamma codes of the
runs ``r0, r1, r2, ...`` (a leading zero-length run is encoded when the vector
starts with a 1), plus a sampled directory with one entry every ``sample_rate``
runs recording the starting position, the number of ones before the run and
the bit offset of its gamma code.
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import repeat
from typing import Iterable, Iterator, List, Tuple, Union

from repro.bits import kernel
from repro.bits.bitstring import Bits
from repro.bits.codes import BitReader, BitWriter, gamma_code_length
from repro.bits.kernel import runs_of_value
from repro.bitvector.base import StaticBitVector, validate_select_indexes
from repro.exceptions import OutOfBoundsError

__all__ = ["RLEBitVector", "runs_of"]

_DEFAULT_SAMPLE = 32


def runs_of(bits: Union[Bits, Iterable[int]]) -> List[Tuple[int, int]]:
    """Return the maximal runs of ``bits`` as a list of ``(bit, length)`` pairs.

    Word-parallel under every input shape: a :class:`Bits` payload goes
    through the kernel's xor-shift boundary extraction, and any other
    iterable is bulk-packed by the kernel backend first and then run-decoded
    from the packed words -- never a per-bit Python comparison loop.
    """
    if isinstance(bits, Bits):
        return runs_of_value(bits.value, len(bits))
    words, length = kernel.pack_bits(bits)
    return kernel.runs_of_words(words, length)


class RLEBitVector(StaticBitVector):
    """Static RLE + Elias gamma bitvector with sampled rank/select directories."""

    __slots__ = (
        "_length",
        "_ones",
        "_codes",
        "_n_runs",
        "_first_bit",
        "_sample_rate",
        "_sample_pos",
        "_sample_ones",
        "_sample_code",
    )

    def __init__(
        self,
        bits: Union[Bits, Iterable[int]] = (),
        sample_rate: int = _DEFAULT_SAMPLE,
    ) -> None:
        if sample_rate < 1:
            raise ValueError("sample_rate must be positive")
        self._sample_rate = sample_rate
        self._build_from_runs(runs_of(bits))

    def _build_from_runs(self, runs: List[Tuple[int, int]]) -> None:
        sample_rate = self._sample_rate
        self._n_runs = len(runs)
        self._first_bit = runs[0][0] if runs else 0
        writer = BitWriter()
        sample_pos: List[int] = []
        sample_ones: List[int] = []
        sample_code: List[int] = []
        position = 0
        ones = 0
        for index, (bit, length) in enumerate(runs):
            if index % sample_rate == 0:
                sample_pos.append(position)
                sample_ones.append(ones)
                sample_code.append(len(writer))
            writer.write_gamma(length)
            position += length
            if bit:
                ones += length
        self._length = position
        self._ones = ones
        self._codes = writer.to_bits()
        self._sample_pos = sample_pos
        self._sample_ones = sample_ones
        self._sample_code = sample_code

    # ------------------------------------------------------------------
    @classmethod
    def from_runs(cls, runs: Iterable[Tuple[int, int]], sample_rate: int = _DEFAULT_SAMPLE) -> "RLEBitVector":
        """Build from an iterable of ``(bit, length)`` runs.

        Adjacent same-bit and zero-length runs are normalised away; the runs
        are encoded directly, never expanded bit by bit.
        """
        if sample_rate < 1:
            raise ValueError("sample_rate must be positive")
        normalized: List[Tuple[int, int]] = []
        for bit, length in runs:
            if length < 0:
                raise ValueError("run length must be non-negative")
            if length == 0:
                continue
            bit = 1 if bit else 0
            if normalized and normalized[-1][0] == bit:
                normalized[-1] = (bit, normalized[-1][1] + length)
            else:
                normalized.append((bit, length))
        vector = cls.__new__(cls)
        vector._sample_rate = sample_rate
        vector._build_from_runs(normalized)
        return vector

    @classmethod
    def from_words(
        cls,
        words: List[int],
        length: int,
        sample_rate: int = _DEFAULT_SAMPLE,
    ) -> "RLEBitVector":
        """Build from a kernel packed word sequence (list or word array).

        The array-aware construction path: the runs are decoded straight
        from the packed words by the kernel backend (one boundary-diff pass
        under numpy) and gamma-encoded, never expanded bit by bit.
        """
        return cls.from_runs(
            kernel.runs_of_words(words, length), sample_rate=sample_rate
        )

    def __len__(self) -> int:
        return self._length

    @property
    def ones(self) -> int:
        return self._ones

    @property
    def run_count(self) -> int:
        """Number of maximal runs."""
        return self._n_runs

    # ------------------------------------------------------------------
    def _run_bit(self, run_index: int) -> int:
        """Bit value of run ``run_index`` (runs alternate starting at _first_bit)."""
        return self._first_bit ^ (run_index & 1)

    def _locate_position(self, pos: int) -> Tuple[int, int, int, int]:
        """Find the run containing position ``pos``.

        Returns ``(run_index, run_start, ones_before_run, code_offset)``.
        """
        sample_index = bisect_right(self._sample_pos, pos) - 1
        run_index = sample_index * self._sample_rate
        run_start = self._sample_pos[sample_index]
        ones = self._sample_ones[sample_index]
        reader = BitReader(self._codes, self._sample_code[sample_index])
        while True:
            length = reader.read_gamma()
            if run_start + length > pos or run_index == self._n_runs - 1:
                return run_index, run_start, ones, length
            if self._run_bit(run_index):
                ones += length
            run_start += length
            run_index += 1

    # ------------------------------------------------------------------
    def access(self, pos: int) -> int:
        self._check_pos(pos)
        run_index, _, _, _ = self._locate_position(pos)
        return self._run_bit(run_index)

    def rank(self, bit: int, pos: int) -> int:
        self._check_bit(bit)
        self._check_rank_pos(pos)
        if pos == 0:
            return 0
        run_index, run_start, ones, _ = self._locate_position(pos - 1)
        if self._run_bit(run_index):
            ones += pos - run_start
        return ones if bit else pos - ones

    def select(self, bit: int, idx: int) -> int:
        self._check_bit(bit)
        total = self._ones if bit else self._length - self._ones
        if not 0 <= idx < total:
            raise OutOfBoundsError(
                f"select({bit}, {idx}) out of range: only {total} occurrences"
            )
        # Binary search on sampled counts of `bit` before each sample.
        if bit:
            counts = self._sample_ones
        else:
            counts = [
                pos - ones for pos, ones in zip(self._sample_pos, self._sample_ones)
            ]
        sample_index = bisect_right(counts, idx) - 1
        run_index = sample_index * self._sample_rate
        run_start = self._sample_pos[sample_index]
        seen = counts[sample_index]
        reader = BitReader(self._codes, self._sample_code[sample_index])
        while True:
            length = reader.read_gamma()
            if self._run_bit(run_index) == bit:
                if seen + length > idx:
                    return run_start + (idx - seen)
                seen += length
            run_start += length
            run_index += 1

    def select_many(self, bit: int, indexes) -> List[int]:
        """``select(bit, idx)`` for each index, batch-amortised.

        The indexes are sorted once, the zeros-count sample directory is
        materialised once (the scalar path rebuilds it per call), and the
        gamma-coded runs are decoded monotonically -- a sample re-jump happens
        only when the next query overshoots the current sample region, so
        each touched run is decoded exactly once.  Amortised O(q log q + R)
        where R is the number of touched runs, against one directory search
        plus run scan per query for the scalar loop.
        """
        self._check_bit(bit)
        total = self._ones if bit else self._length - self._ones
        indexes = validate_select_indexes(indexes, total, bit)
        if not indexes:
            return []
        if bit:
            counts = self._sample_ones
        else:
            counts = [
                pos - ones
                for pos, ones in zip(self._sample_pos, self._sample_ones)
            ]
        order = sorted(range(len(indexes)), key=indexes.__getitem__)
        out = [0] * len(indexes)
        sample_rate = self._sample_rate
        n_samples = len(counts)
        run_index = run_start = seen = 0
        reader = None
        current_len = None
        for index in order:
            idx = indexes[index]
            next_sample = run_index // sample_rate + 1
            if reader is None or (
                next_sample < n_samples and counts[next_sample] <= idx
            ):
                sample_index = bisect_right(counts, idx) - 1
                run_index = sample_index * sample_rate
                run_start = self._sample_pos[sample_index]
                seen = counts[sample_index]
                reader = BitReader(self._codes, self._sample_code[sample_index])
                current_len = None
            while True:
                if current_len is None:
                    current_len = reader.read_gamma()
                if self._run_bit(run_index) == bit:
                    if seen + current_len > idx:
                        out[index] = run_start + (idx - seen)
                        break
                    seen += current_len
                run_start += current_len
                run_index += 1
                current_len = None
        return out

    def iter_range(self, start: int, stop: int) -> Iterator[int]:
        self._check_range(start, stop)
        if start >= stop:
            return
        # Walk runs from the nearest sample point before `start`.
        sample_index = bisect_right(self._sample_pos, start) - 1
        run_index = sample_index * self._sample_rate
        run_start = self._sample_pos[sample_index]
        reader = BitReader(self._codes, self._sample_code[sample_index])
        pos = start
        while pos < stop:
            length = reader.read_gamma()
            run_end = run_start + length
            if run_end > pos:
                bit = self._run_bit(run_index)
                emit_until = min(run_end, stop)
                # C-level run emission: one repeat() per run, no per-bit loop.
                yield from repeat(bit, emit_until - pos)
                pos = emit_until
            run_start = run_end
            run_index += 1

    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        codes = len(self._codes)
        samples = 3 * len(self._sample_pos) * 64
        return codes + samples + 64  # + first-bit/word of metadata

    def payload_bits(self) -> int:
        """Bits of the gamma-coded runs only."""
        return len(self._codes)

    def runs(self) -> Iterator[Tuple[int, int]]:
        """Iterate over the ``(bit, length)`` runs."""
        reader = BitReader(self._codes)
        for run_index in range(self._n_runs):
            yield self._run_bit(run_index), reader.read_gamma()
