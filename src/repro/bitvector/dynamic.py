"""Fully dynamic RLE-compressed bitvector (paper Section 4.2, Theorem 4.9).

The paper adapts the dynamic bitvector of Makinen & Navarro by replacing gap
encoding + Elias delta with run-length encoding + Elias gamma, so that
``Init(b, n)`` -- creating a constant bitvector of arbitrary length -- takes
O(log n) time instead of Omega(n / w).  The underlying container is a balanced
search tree over the encoded runs.

This implementation keeps the same design: a randomised balanced tree (treap)
whose nodes are maximal runs ``(bit, length)``, augmented with subtree totals
of bits and ones.  All operations -- ``access``, ``rank``, ``select``,
``insert``, ``delete``, ``append``, ``init`` -- run in O(log r) expected time
where ``r`` is the number of runs, and the compressed payload is the sum of
the gamma code lengths of the runs, i.e. O(n H0) bits as in Theorem 4.9.

``Init(b, n)`` builds a single-node tree, which is exactly the property
(Remark 4.2) that makes the structure usable inside the dynamic Wavelet Trie.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.bits.codes import gamma_code_length
from repro.bitvector.base import BitVector
from repro.exceptions import OutOfBoundsError

__all__ = ["DynamicBitVector"]


class _RunNode:
    """A treap node holding one maximal run of equal bits."""

    __slots__ = (
        "bit",
        "length",
        "priority",
        "left",
        "right",
        "sub_length",
        "sub_ones",
    )

    def __init__(self, bit: int, length: int, priority: float) -> None:
        self.bit = bit
        self.length = length
        self.priority = priority
        self.left: Optional["_RunNode"] = None
        self.right: Optional["_RunNode"] = None
        self.sub_length = length
        self.sub_ones = length if bit else 0

    def update(self) -> None:
        """Recompute subtree aggregates from children."""
        length = self.length
        ones = self.length if self.bit else 0
        if self.left is not None:
            length += self.left.sub_length
            ones += self.left.sub_ones
        if self.right is not None:
            length += self.right.sub_length
            ones += self.right.sub_ones
        self.sub_length = length
        self.sub_ones = ones


def _merge(a: Optional[_RunNode], b: Optional[_RunNode]) -> Optional[_RunNode]:
    """Merge two treaps, all positions of ``a`` preceding those of ``b``."""
    if a is None:
        return b
    if b is None:
        return a
    if a.priority > b.priority:
        a.right = _merge(a.right, b)
        a.update()
        return a
    b.left = _merge(a, b.left)
    b.update()
    return b


def _split(
    node: Optional[_RunNode], pos: int, rng: random.Random
) -> Tuple[Optional[_RunNode], Optional[_RunNode]]:
    """Split a treap into (first ``pos`` bits, the rest), cutting runs if needed."""
    if node is None:
        return None, None
    left_len = node.left.sub_length if node.left is not None else 0
    if pos <= left_len:
        left, right = _split(node.left, pos, rng)
        node.left = right
        node.update()
        return left, node
    if pos >= left_len + node.length:
        left, right = _split(node.right, pos - left_len - node.length, rng)
        node.right = left
        node.update()
        return node, right
    # The cut falls inside this node's run: split the run into two nodes.
    cut = pos - left_len
    right_part = _RunNode(node.bit, node.length - cut, rng.random())
    right_part.left = None
    right_part.right = node.right
    right_part.update()
    node.length = cut
    node.right = None
    node.update()
    return node, right_part


class DynamicBitVector(BitVector):
    """Dynamic bitvector over RLE runs in a balanced (treap) search tree."""

    __slots__ = ("_root", "_rng")

    def __init__(self, bits: Iterable[int] = (), seed: int = 0x5EED) -> None:
        self._rng = random.Random(seed)
        self._root: Optional[_RunNode] = None
        self.extend(bits)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def init_run(cls, bit: int, length: int, seed: int = 0x5EED) -> "DynamicBitVector":
        """``Init(b, n)``: a constant bitvector built in O(1) nodes."""
        if length < 0:
            raise ValueError("length must be non-negative")
        vector = cls(seed=seed)
        if length:
            vector._root = _RunNode(1 if bit else 0, length, vector._rng.random())
        return vector

    @classmethod
    def from_runs(cls, runs: Iterable[Tuple[int, int]], seed: int = 0x5EED) -> "DynamicBitVector":
        """Build from an iterable of ``(bit, length)`` runs."""
        vector = cls(seed=seed)
        for bit, length in runs:
            vector.append_run(bit, length)
        return vector

    # ------------------------------------------------------------------
    # Size
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._root.sub_length if self._root is not None else 0

    @property
    def ones(self) -> int:
        return self._root.sub_ones if self._root is not None else 0

    @property
    def run_count(self) -> int:
        """Number of run nodes currently in the tree."""
        return sum(1 for _ in self.runs())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def access(self, pos: int) -> int:
        self._check_pos(pos)
        node = self._root
        while node is not None:
            left_len = node.left.sub_length if node.left is not None else 0
            if pos < left_len:
                node = node.left
            elif pos < left_len + node.length:
                return node.bit
            else:
                pos -= left_len + node.length
                node = node.right
        raise AssertionError("aggregates inconsistent")  # pragma: no cover

    def rank(self, bit: int, pos: int) -> int:
        self._check_bit(bit)
        self._check_rank_pos(pos)
        ones = 0
        consumed = 0
        node = self._root
        remaining = pos
        while node is not None and remaining > 0:
            left_len = node.left.sub_length if node.left is not None else 0
            if remaining <= left_len:
                node = node.left
                continue
            # Take all of the left subtree.
            if node.left is not None:
                ones += node.left.sub_ones
            remaining -= left_len
            consumed += left_len
            take = min(remaining, node.length)
            if node.bit:
                ones += take
            remaining -= take
            consumed += take
            if remaining > 0:
                node = node.right
            else:
                break
        return ones if bit else pos - ones

    def select(self, bit: int, idx: int) -> int:
        self._check_bit(bit)
        total = self.count(bit)
        if not 0 <= idx < total:
            raise OutOfBoundsError(
                f"select({bit}, {idx}) out of range: only {total} occurrences"
            )
        node = self._root
        position = 0
        remaining = idx
        while node is not None:
            left_len = node.left.sub_length if node.left is not None else 0
            left_ones = node.left.sub_ones if node.left is not None else 0
            left_count = left_ones if bit else left_len - left_ones
            if remaining < left_count:
                node = node.left
                continue
            remaining -= left_count
            position += left_len
            node_count = node.length if node.bit == bit else 0
            if remaining < node_count:
                return position + remaining
            remaining -= node_count
            position += node.length
            node = node.right
        raise AssertionError("aggregates inconsistent")  # pragma: no cover

    def iter_range(self, start: int, stop: int) -> Iterator[int]:
        self._check_range(start, stop)
        if start >= stop:
            return
        emitted = 0
        needed = stop - start
        skipped = 0
        for bit, length in self._runs_from(self._root):
            run_start = skipped
            run_end = skipped + length
            skipped = run_end
            if run_end <= start:
                continue
            lo = max(run_start, start)
            hi = min(run_end, stop)
            for _ in range(hi - lo):
                yield bit
                emitted += 1
            if emitted >= needed:
                return

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, pos: int, bit: int) -> None:
        """Insert ``bit`` so that it becomes the bit at position ``pos``."""
        self._check_bit(bit)
        if not 0 <= pos <= len(self):
            raise OutOfBoundsError(
                f"insert position {pos} out of range for length {len(self)}"
            )
        self.insert_run(pos, bit, 1)

    def insert_run(self, pos: int, bit: int, length: int) -> None:
        """Insert ``length`` copies of ``bit`` starting at position ``pos``."""
        self._check_bit(bit)
        if length < 0:
            raise ValueError("length must be non-negative")
        if length == 0:
            return
        if not 0 <= pos <= len(self):
            raise OutOfBoundsError(
                f"insert position {pos} out of range for length {len(self)}"
            )
        left, right = _split(self._root, pos, self._rng)
        left = self._absorb_or_append(left, bit, length)
        self._root = self._coalesced_merge(left, right)

    def append(self, bit: int) -> None:
        """Append one bit at the end (the ``Append`` primitive)."""
        self.append_run(bit, 1)

    def append_run(self, bit: int, length: int) -> None:
        """Append ``length`` copies of ``bit`` at the end."""
        self._check_bit(bit)
        if length < 0:
            raise ValueError("length must be non-negative")
        if length == 0:
            return
        self._root = self._absorb_or_append(self._root, bit, length)

    def delete(self, pos: int) -> int:
        """Delete the bit at position ``pos`` and return its value."""
        self._check_pos(pos)
        left, rest = _split(self._root, pos, self._rng)
        middle, right = _split(rest, 1, self._rng)
        assert middle is not None
        bit = middle.bit
        self._root = self._coalesced_merge(left, right)
        return bit

    def extend(self, bits: Iterable[int]) -> None:
        """Append every bit of ``bits``."""
        for bit in bits:
            self.append(bit)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _absorb_or_append(
        self, tree: Optional[_RunNode], bit: int, length: int
    ) -> Optional[_RunNode]:
        """Append a run at the end of ``tree``, extending its last run when possible."""
        if tree is None:
            return _RunNode(bit, length, self._rng.random())
        # Walk the rightmost spine; if the last run has the same bit, extend it
        # in place (aggregates along the spine are patched on the way back).
        last = tree
        spine: List[_RunNode] = []
        while last.right is not None:
            spine.append(last)
            last = last.right
        if last.bit == bit:
            last.length += length
            last.update()
            for node in reversed(spine):
                node.update()
            return tree
        return _merge(tree, _RunNode(bit, length, self._rng.random()))

    def _coalesced_merge(
        self, left: Optional[_RunNode], right: Optional[_RunNode]
    ) -> Optional[_RunNode]:
        """Merge two treaps, coalescing the boundary runs if they carry the same bit."""
        if left is None or right is None:
            return _merge(left, right)
        last_bit = self._last_run_bit(left)
        first_bit, first_len = self._first_run(right)
        if last_bit == first_bit:
            right = self._pop_first_run(right, first_len)
            left = self._absorb_or_append(left, first_bit, first_len)
        return _merge(left, right)

    @staticmethod
    def _last_run_bit(tree: _RunNode) -> int:
        node = tree
        while node.right is not None:
            node = node.right
        return node.bit

    @staticmethod
    def _first_run(tree: _RunNode) -> Tuple[int, int]:
        node = tree
        while node.left is not None:
            node = node.left
        return node.bit, node.length

    def _pop_first_run(self, tree: _RunNode, first_len: int) -> Optional[_RunNode]:
        """Remove the first run (of known length) from ``tree``."""
        _, right = _split(tree, first_len, self._rng)
        return right

    def _runs_from(self, node: Optional[_RunNode]) -> Iterator[Tuple[int, int]]:
        """In-order traversal of the run nodes (iterative, avoids recursion limits)."""
        stack: List[_RunNode] = []
        current = node
        while stack or current is not None:
            while current is not None:
                stack.append(current)
                current = current.left
            current = stack.pop()
            yield current.bit, current.length
            current = current.right

    def runs(self) -> Iterator[Tuple[int, int]]:
        """Iterate over the stored ``(bit, length)`` runs in order."""
        return self._runs_from(self._root)

    def to_list(self) -> List[int]:
        out: List[int] = []
        for bit, length in self.runs():
            out.extend([bit] * length)
        return out

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Compressed payload: gamma codes of the runs plus one bit per run.

        This is the RLE+gamma size of Theorem 4.9 -- the quantity the space
        experiments report.  The pointer overhead of the balanced tree is
        reported separately by :meth:`overhead_bits`.
        """
        total = 0
        for _, length in self.runs():
            total += gamma_code_length(length) + 1
        return total + 64

    def overhead_bits(self, pointer_bits: int = 64) -> int:
        """Pointer/bookkeeping overhead of the balanced tree (engineering cost)."""
        nodes = sum(1 for _ in self.runs())
        # left, right, priority, lengths and aggregates: ~6 words per node.
        return nodes * 6 * pointer_bits
