"""Fully dynamic RLE-compressed bitvector (paper Section 4.2, Theorem 4.9).

The paper adapts the dynamic bitvector of Makinen & Navarro by replacing gap
encoding + Elias delta with run-length encoding + Elias gamma, so that
``Init(b, n)`` -- creating a constant bitvector of arbitrary length -- takes
O(log n) time instead of Omega(n / w).  The underlying container is a balanced
search tree over the encoded runs.

This implementation keeps the same design: a randomised balanced tree (treap)
whose nodes are maximal runs ``(bit, length)``, augmented with subtree totals
of bits and ones.  All operations -- ``access``, ``rank``, ``select``,
``insert``, ``delete``, ``append``, ``init`` -- run in O(log r) expected time
where ``r`` is the number of runs, and the compressed payload is the sum of
the gamma code lengths of the runs, i.e. O(n H0) bits as in Theorem 4.9.

``Init(b, n)`` builds a single-node tree, which is exactly the property
(Remark 4.2) that makes the structure usable inside the dynamic Wavelet Trie.

Bulk paths (PR 2)
-----------------
Construction and bulk appends never go bit by bit: ``extend`` (the amortised
``Append`` of the paper) extracts maximal runs through the word-level kernel
(:func:`repro.bits.kernel.runs_of_value`) and builds a treap over them in
O(r) with a right-spine Cartesian construction, then merges it in O(log r).
``iter_runs(start, stop)`` descends the tree to the first overlapping run, so
a short slice near the end no longer pays for every run before it, and the
batch queries ``access_many``/``rank_many`` answer q sorted queries in one
in-order pass over the runs -- the primitive behind the dynamic Wavelet
Trie's batched Access/Rank.
"""

from __future__ import annotations

import random
from itertools import repeat
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.bits import kernel
from repro.bits.bitstring import Bits
from repro.bits.codes import gamma_code_length
from repro.bitvector.base import (
    BitVector,
    validate_delete_positions,
    validate_select_indexes,
)
from repro.bitvector.rle import runs_of
from repro.exceptions import OutOfBoundsError

__all__ = ["DynamicBitVector"]


class _RunNode:
    """A treap node holding one maximal run of equal bits."""

    __slots__ = (
        "bit",
        "length",
        "priority",
        "left",
        "right",
        "sub_length",
        "sub_ones",
        "sub_runs",
    )

    def __init__(self, bit: int, length: int, priority: float) -> None:
        self.bit = bit
        self.length = length
        self.priority = priority
        self.left: Optional["_RunNode"] = None
        self.right: Optional["_RunNode"] = None
        self.sub_length = length
        self.sub_ones = length if bit else 0
        self.sub_runs = 1

    def update(self) -> None:
        """Recompute subtree aggregates from children."""
        length = self.length
        ones = self.length if self.bit else 0
        runs = 1
        if self.left is not None:
            length += self.left.sub_length
            ones += self.left.sub_ones
            runs += self.left.sub_runs
        if self.right is not None:
            length += self.right.sub_length
            ones += self.right.sub_ones
            runs += self.right.sub_runs
        self.sub_length = length
        self.sub_ones = ones
        self.sub_runs = runs


def _merge(a: Optional[_RunNode], b: Optional[_RunNode]) -> Optional[_RunNode]:
    """Merge two treaps, all positions of ``a`` preceding those of ``b``."""
    if a is None:
        return b
    if b is None:
        return a
    if a.priority > b.priority:
        a.right = _merge(a.right, b)
        a.update()
        return a
    b.left = _merge(a, b.left)
    b.update()
    return b


def _split(
    node: Optional[_RunNode], pos: int
) -> Tuple[Optional[_RunNode], Optional[_RunNode]]:
    """Split a treap into (first ``pos`` bits, the rest), cutting runs if needed."""
    if node is None:
        return None, None
    left_len = node.left.sub_length if node.left is not None else 0
    if pos <= left_len:
        left, right = _split(node.left, pos)
        node.left = right
        node.update()
        return left, node
    if pos >= left_len + node.length:
        left, right = _split(node.right, pos - left_len - node.length)
        node.right = left
        node.update()
        return node, right
    # The cut falls inside this node's run: split the run into two nodes.  The
    # right half *inherits* the split node's priority -- it takes the node's
    # place at the root of the right subtree, so a fresh random priority here
    # would violate the max-heap invariant the O(log r) bounds depend on.
    cut = pos - left_len
    right_part = _RunNode(node.bit, node.length - cut, node.priority)
    right_part.left = None
    right_part.right = node.right
    right_part.update()
    node.length = cut
    node.right = None
    node.update()
    return node, right_part


class DynamicBitVector(BitVector):
    """Dynamic bitvector over RLE runs in a balanced (treap) search tree."""

    __slots__ = ("_root", "_rng")

    def __init__(self, bits: Iterable[int] = (), seed: int = 0x5EED) -> None:
        self._rng = random.Random(seed)
        self._root: Optional[_RunNode] = None
        self.extend(bits)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def init_run(cls, bit: int, length: int, seed: int = 0x5EED) -> "DynamicBitVector":
        """``Init(b, n)``: a constant bitvector built in O(1) nodes."""
        if length < 0:
            raise ValueError("length must be non-negative")
        vector = cls(seed=seed)
        if length:
            vector._root = _RunNode(1 if bit else 0, length, vector._rng.random())
        return vector

    @classmethod
    def from_runs(cls, runs: Iterable[Tuple[int, int]], seed: int = 0x5EED) -> "DynamicBitVector":
        """Build from an iterable of ``(bit, length)`` runs in O(r).

        The runs are normalised (zero lengths dropped, adjacent equal bits
        coalesced) and loaded with the linear treap build -- the bulk
        counterpart of the paper's ``Init`` for multi-run content.
        """
        vector = cls(seed=seed)
        vector._root = vector._build_treap(vector._normalise_runs(runs))
        return vector

    @classmethod
    def from_bits(cls, bits: Bits, seed: int = 0x5EED) -> "DynamicBitVector":
        """Build from a :class:`Bits` payload; runs come from the kernel."""
        return cls(bits, seed=seed)

    # ------------------------------------------------------------------
    # Size
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._root.sub_length if self._root is not None else 0

    @property
    def ones(self) -> int:
        return self._root.sub_ones if self._root is not None else 0

    @property
    def run_count(self) -> int:
        """Number of run nodes currently in the tree (O(1), from aggregates)."""
        return self._root.sub_runs if self._root is not None else 0

    def tree_depth(self) -> int:
        """Height of the run treap (O(log r) expected when balanced).

        Exposed for the balance regression tests: the heap invariant on
        priorities is what keeps this logarithmic under update churn.
        """
        depth = 0
        stack: List[Tuple[Optional[_RunNode], int]] = [(self._root, 1)]
        while stack:
            node, level = stack.pop()
            if node is None:
                continue
            if level > depth:
                depth = level
            stack.append((node.left, level + 1))
            stack.append((node.right, level + 1))
        return depth

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def access(self, pos: int) -> int:
        self._check_pos(pos)
        node = self._root
        while node is not None:
            left_len = node.left.sub_length if node.left is not None else 0
            if pos < left_len:
                node = node.left
            elif pos < left_len + node.length:
                return node.bit
            else:
                pos -= left_len + node.length
                node = node.right
        raise AssertionError("aggregates inconsistent")  # pragma: no cover

    def rank(self, bit: int, pos: int) -> int:
        self._check_bit(bit)
        self._check_rank_pos(pos)
        ones = 0
        consumed = 0
        node = self._root
        remaining = pos
        while node is not None and remaining > 0:
            left_len = node.left.sub_length if node.left is not None else 0
            if remaining <= left_len:
                node = node.left
                continue
            # Take all of the left subtree.
            if node.left is not None:
                ones += node.left.sub_ones
            remaining -= left_len
            consumed += left_len
            take = min(remaining, node.length)
            if node.bit:
                ones += take
            remaining -= take
            consumed += take
            if remaining > 0:
                node = node.right
            else:
                break
        return ones if bit else pos - ones

    def select(self, bit: int, idx: int) -> int:
        self._check_bit(bit)
        total = self.count(bit)
        if not 0 <= idx < total:
            raise OutOfBoundsError(
                f"select({bit}, {idx}) out of range: only {total} occurrences"
            )
        node = self._root
        position = 0
        remaining = idx
        while node is not None:
            left_len = node.left.sub_length if node.left is not None else 0
            left_ones = node.left.sub_ones if node.left is not None else 0
            left_count = left_ones if bit else left_len - left_ones
            if remaining < left_count:
                node = node.left
                continue
            remaining -= left_count
            position += left_len
            node_count = node.length if node.bit == bit else 0
            if remaining < node_count:
                return position + remaining
            remaining -= node_count
            position += node.length
            node = node.right
        raise AssertionError("aggregates inconsistent")  # pragma: no cover

    def iter_runs(self, start: int, stop: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(bit, length)`` pieces covering positions ``[start, stop)``.

        Descends the tree to the run containing ``start`` (O(log r), skipping
        whole subtrees by their aggregate lengths) and then walks in order,
        truncating the first and last runs to the range -- so a 1-bit slice at
        the end costs O(log r), not O(r).
        """
        self._check_range(start, stop)
        remaining = stop - start
        if remaining <= 0:
            return
        stack: List[_RunNode] = []
        node = self._root
        skip = start
        while node is not None:
            left_len = node.left.sub_length if node.left is not None else 0
            if skip < left_len:
                stack.append(node)
                node = node.left
                continue
            skip -= left_len
            if skip < node.length:
                take = min(node.length - skip, remaining)
                yield node.bit, take
                remaining -= take
                if remaining <= 0:
                    return
                node = node.right
                break
            skip -= node.length
            node = node.right
        # In-order continuation over the right subtree and stacked ancestors.
        while True:
            while node is not None:
                stack.append(node)
                node = node.left
            if not stack:
                return
            node = stack.pop()
            take = min(node.length, remaining)
            yield node.bit, take
            remaining -= take
            if remaining <= 0:
                return
            node = node.right

    def iter_range(self, start: int, stop: int) -> Iterator[int]:
        for bit, length in self.iter_runs(start, stop):
            yield from repeat(bit, length)

    # ------------------------------------------------------------------
    # Batch query paths (amortise the tree walk over sorted positions)
    # ------------------------------------------------------------------
    def _batch_prefers_scalar(self, queries: int) -> bool:
        """True when q O(log r) tree walks beat one O(r + q log q) runs pass.

        Uses the O(1) ``sub_runs`` aggregate: the runs pass touches up to r
        nodes, the scalar walks about q * log2(r), so small batches on
        run-heavy vectors fall back to the scalar loop.
        """
        run_count = self._root.sub_runs if self._root is not None else 0
        return queries * max(1, run_count.bit_length()) < run_count

    def access_many(self, positions: Sequence[int]) -> List[int]:
        """Bits at each of ``positions`` in one in-order pass over the runs.

        Sorts the positions once and advances a single runs iterator, so q
        queries cost amortised O(r + q log q) instead of q O(log r) tree
        walks -- the fast path behind the dynamic Wavelet Trie's batched
        Access.
        """
        if not isinstance(positions, (list, tuple)):
            positions = list(positions)
        if not positions:
            return []
        length = len(self)
        if min(positions) < 0 or max(positions) >= length:
            bad = next(p for p in positions if not 0 <= p < length)
            raise OutOfBoundsError(
                f"position {bad} out of range for length {length}"
            )
        if self._batch_prefers_scalar(len(positions)):
            return [self.access(pos) for pos in positions]
        order = sorted(range(len(positions)), key=positions.__getitem__)
        out = [0] * len(positions)
        runs = self.runs()
        run_bit = 0
        run_end = 0
        for index in order:
            pos = positions[index]
            while pos >= run_end:
                run_bit, run_length = next(runs)
                run_end += run_length
            out[index] = run_bit
        return out

    def rank_many(self, bit: int, positions: Sequence[int]) -> List[int]:
        """``rank(bit, pos)`` for each position in one in-order runs pass.

        Amortised O(r + q log q) for q queries (sort once, advance a single
        runs iterator), against q O(log r) tree walks for the scalar loop.
        """
        self._check_bit(bit)
        if not isinstance(positions, (list, tuple)):
            positions = list(positions)
        if not positions:
            return []
        length = len(self)
        if min(positions) < 0 or max(positions) > length:
            bad = next(p for p in positions if not 0 <= p <= length)
            raise OutOfBoundsError(
                f"rank position {bad} out of range for length {length}"
            )
        if self._batch_prefers_scalar(len(positions)):
            return [self.rank(bit, pos) for pos in positions]
        order = sorted(range(len(positions)), key=positions.__getitem__)
        out = [0] * len(positions)
        runs = self.runs()
        run_bit = 0
        run_start = 0
        run_end = 0
        ones_before = 0  # ones strictly before run_start
        for index in order:
            pos = positions[index]
            while pos > run_end:
                if run_bit:
                    ones_before += run_end - run_start
                run_bit, run_length = next(runs)
                run_start = run_end
                run_end += run_length
            ones = ones_before + (pos - run_start if run_bit else 0)
            out[index] = ones if bit else pos - ones
        return out

    def select_many(self, bit: int, indexes: Sequence[int]) -> List[int]:
        """``select(bit, idx)`` for each index, batch-amortised.

        The select-side twin of :meth:`rank_many`: the indexes are sorted
        once and a single in-order pass over the runs answers them all, so q
        queries cost amortised O(r + q log q) instead of q O(log r) tree
        walks.  Small batches on run-heavy vectors fall back to the scalar
        walks (see :meth:`_batch_prefers_scalar`).  This is the primitive
        behind the dynamic Wavelet Trie's batched Select.
        """
        self._check_bit(bit)
        indexes = validate_select_indexes(indexes, self.count(bit), bit)
        if not indexes:
            return []
        if self._batch_prefers_scalar(len(indexes)):
            return [self.select(bit, idx) for idx in indexes]
        order = sorted(range(len(indexes)), key=indexes.__getitem__)
        out = [0] * len(indexes)
        runs = self.runs()
        run_bit = 0
        run_length = 0
        position = 0  # start position of the current run
        seen = 0  # occurrences of `bit` before the current run
        for index in order:
            idx = indexes[index]
            while run_bit != bit or seen + run_length <= idx:
                if run_bit == bit:
                    seen += run_length
                position += run_length
                run_bit, run_length = next(runs)
            out[index] = position + (idx - seen)
        return out

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, pos: int, bit: int) -> None:
        """Insert ``bit`` so that it becomes the bit at position ``pos``."""
        self._check_bit(bit)
        if not 0 <= pos <= len(self):
            raise OutOfBoundsError(
                f"insert position {pos} out of range for length {len(self)}"
            )
        self.insert_run(pos, bit, 1)

    def insert_run(self, pos: int, bit: int, length: int) -> None:
        """Insert ``length`` copies of ``bit`` starting at position ``pos``."""
        self._check_bit(bit)
        if length < 0:
            raise ValueError("length must be non-negative")
        if length == 0:
            return
        if not 0 <= pos <= len(self):
            raise OutOfBoundsError(
                f"insert position {pos} out of range for length {len(self)}"
            )
        left, right = _split(self._root, pos)
        left = self._absorb_or_append(left, bit, length)
        self._root = self._coalesced_merge(left, right)

    def insert_many(self, pos: int, bits: Union[Bits, Iterable[int]]) -> None:
        """Insert every bit of ``bits``, the first landing at position ``pos``.

        Bulk ``Insert``: the payload is decomposed into maximal runs by the
        word-level kernel (:func:`repro.bits.kernel.runs_of_value`), the treap
        is split *once* at ``pos``, a treap over the new runs is bulk-built in
        O(r_new) with the right-spine construction, and the two merges (with
        boundary coalescing) finish in O(log r) -- amortised O(k / 8 + r_new +
        log r) for k bits, instead of k root-to-leaf insertions costing
        O(k log r).
        """
        self.insert_runs(pos, runs_of(bits))

    def insert_runs(self, pos: int, runs: Iterable[Tuple[int, int]]) -> None:
        """Insert ``(bit, length)`` runs starting at position ``pos``.

        One O(log r) split, one O(r_new) treap build, two coalescing merges.
        """
        if not 0 <= pos <= len(self):
            raise OutOfBoundsError(
                f"insert position {pos} out of range for length {len(self)}"
            )
        tree = self._build_treap(self._normalise_runs(runs))
        if tree is None:
            return
        left, right = _split(self._root, pos)
        left = self._coalesced_merge(left, tree)
        self._root = self._coalesced_merge(left, right)

    def append(self, bit: int) -> None:
        """Append one bit at the end (the ``Append`` primitive)."""
        self.append_run(bit, 1)

    def append_run(self, bit: int, length: int) -> None:
        """Append ``length`` copies of ``bit`` at the end."""
        self._check_bit(bit)
        if length < 0:
            raise ValueError("length must be non-negative")
        if length == 0:
            return
        self._root = self._absorb_or_append(self._root, bit, length)

    def delete(self, pos: int) -> int:
        """Delete the bit at position ``pos`` and return its value."""
        self._check_pos(pos)
        left, rest = _split(self._root, pos)
        middle, right = _split(rest, 1)
        assert middle is not None
        bit = middle.bit
        self._root = self._coalesced_merge(left, right)
        return bit

    def delete_range(self, start: int, stop: int) -> List[Tuple[int, int]]:
        """Delete positions ``[start, stop)``; returns the removed runs in order.

        Contiguous bulk ``Delete``: two O(log r) splits cut the range out in
        one piece, the boundary runs of the remainder coalesce in the merge,
        and the removed payload comes back as its maximal ``(bit, length)``
        runs -- O(log r + r_removed) total, never one tree walk per bit.
        """
        self._check_range(start, stop)
        if start == stop:
            return []
        left, rest = _split(self._root, start)
        middle, right = _split(rest, stop - start)
        removed = list(self._runs_from(middle))
        self._root = self._coalesced_merge(left, right)
        return removed

    def delete_many(self, positions: Sequence[int]) -> List[int]:
        """Delete the bits at ``positions``; returns their values in input order.

        Bulk ``Delete`` at arbitrary (pre-delete) positions: the treap is
        split twice around the affected span, the kernel's
        :func:`~repro.bits.kernel.delete_positions_from_runs` does one O(r_span
        + k) linear run surgery (dropping emptied runs and coalescing the
        survivors), and an O(r) bulk rebuild plus two coalescing merges
        reassemble the tree -- amortised O(log r + r_span + k log k) for k
        deletions instead of k root-to-leaf walks costing O(k log r).  Small
        batches on run-heavy vectors fall back to the scalar walks (see
        :meth:`_batch_prefers_scalar`).
        """
        positions = validate_delete_positions(positions, len(self))
        if not positions:
            return []
        if self._batch_prefers_scalar(len(positions)):
            order = sorted(
                range(len(positions)), key=positions.__getitem__, reverse=True
            )
            out = [0] * len(positions)
            for index in order:
                out[index] = self.delete(positions[index])
            return out
        order = sorted(range(len(positions)), key=positions.__getitem__)
        start = positions[order[0]]
        stop = positions[order[-1]] + 1
        left, rest = _split(self._root, start)
        middle, right = _split(rest, stop - start)
        kept, deleted = kernel.delete_positions_from_runs(
            list(self._runs_from(middle)),
            [positions[index] - start for index in order],
        )
        merged = self._coalesced_merge(left, self._build_treap(kept))
        self._root = self._coalesced_merge(merged, right)
        out = [0] * len(positions)
        for index, bit in zip(order, deleted):
            out[index] = bit
        return out

    def extend(self, bits: Union[Bits, Iterable[int]]) -> None:
        """Append every bit of ``bits`` (bulk ``Append``).

        Never bit by bit: a :class:`Bits` payload is decomposed into maximal
        runs by the word-level kernel, any other iterable is grouped into
        runs (truthy values count as 1, as in ``Bits.from_iterable``); either
        way a treap over the new runs is built in O(r) and merged at the end
        in O(log r), instead of n per-bit walks down the right spine.
        """
        self.append_runs(runs_of(bits))

    def append_bits(self, bits: Bits) -> None:
        """Append a whole :class:`Bits` payload (alias of bulk :meth:`extend`)."""
        self.extend(bits)

    def append_runs(self, runs: Iterable[Tuple[int, int]]) -> None:
        """Append ``(bit, length)`` runs in O(r + log r) total."""
        tree = self._build_treap(self._normalise_runs(runs))
        if tree is None:
            return
        if self._root is None:
            self._root = tree
        else:
            self._root = self._coalesced_merge(self._root, tree)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _normalise_runs(runs: Iterable[Tuple[int, int]]) -> List[Tuple[int, int]]:
        """Drop empty runs, validate, and coalesce adjacent equal-bit runs.

        Bits are validated strictly (as ``append_run`` does); iterables of
        truthy values are normalised upstream by :func:`runs_of`.
        """
        out: List[Tuple[int, int]] = []
        for bit, length in runs:
            if bit not in (0, 1):
                raise ValueError(f"bit must be 0 or 1, got {bit!r}")
            if length < 0:
                raise ValueError("run length must be non-negative")
            if length == 0:
                continue
            if out and out[-1][0] == bit:
                out[-1] = (bit, out[-1][1] + length)
            else:
                out.append((bit, length))
        return out

    def _build_treap(self, runs: Sequence[Tuple[int, int]]) -> Optional[_RunNode]:
        """Linear treap build from normalised runs (right-spine Cartesian).

        Each run gets a fresh random priority; nodes are appended on the
        right spine, popping spine nodes of smaller priority into the new
        node's left subtree.  Aggregates are patched exactly when a node's
        subtree becomes final, so the whole build is O(r).
        """
        spine: List[_RunNode] = []
        rand = self._rng.random
        for bit, length in runs:
            node = _RunNode(bit, length, rand())
            last: Optional[_RunNode] = None
            while spine and spine[-1].priority < node.priority:
                last = spine.pop()
                last.update()
            node.left = last
            if spine:
                spine[-1].right = node
            spine.append(node)
        for node in reversed(spine):
            node.update()
        return spine[0] if spine else None

    def _absorb_or_append(
        self, tree: Optional[_RunNode], bit: int, length: int
    ) -> Optional[_RunNode]:
        """Append a run at the end of ``tree``, extending its last run when possible."""
        if tree is None:
            return _RunNode(bit, length, self._rng.random())
        # Walk the rightmost spine; if the last run has the same bit, extend it
        # in place (aggregates along the spine are patched on the way back).
        last = tree
        spine: List[_RunNode] = []
        while last.right is not None:
            spine.append(last)
            last = last.right
        if last.bit == bit:
            last.length += length
            last.update()
            for node in reversed(spine):
                node.update()
            return tree
        return _merge(tree, _RunNode(bit, length, self._rng.random()))

    def _coalesced_merge(
        self, left: Optional[_RunNode], right: Optional[_RunNode]
    ) -> Optional[_RunNode]:
        """Merge two treaps, coalescing the boundary runs if they carry the same bit."""
        if left is None or right is None:
            return _merge(left, right)
        last_bit = self._last_run_bit(left)
        first_bit, first_len = self._first_run(right)
        if last_bit == first_bit:
            right = self._pop_first_run(right, first_len)
            left = self._absorb_or_append(left, first_bit, first_len)
        return _merge(left, right)

    @staticmethod
    def _last_run_bit(tree: _RunNode) -> int:
        node = tree
        while node.right is not None:
            node = node.right
        return node.bit

    @staticmethod
    def _first_run(tree: _RunNode) -> Tuple[int, int]:
        node = tree
        while node.left is not None:
            node = node.left
        return node.bit, node.length

    def _pop_first_run(self, tree: _RunNode, first_len: int) -> Optional[_RunNode]:
        """Remove the first run (of known length) from ``tree``."""
        _, right = _split(tree, first_len)
        return right

    def _runs_from(self, node: Optional[_RunNode]) -> Iterator[Tuple[int, int]]:
        """In-order traversal of the run nodes (iterative, avoids recursion limits)."""
        stack: List[_RunNode] = []
        current = node
        while stack or current is not None:
            while current is not None:
                stack.append(current)
                current = current.left
            current = stack.pop()
            yield current.bit, current.length
            current = current.right

    def runs(self) -> Iterator[Tuple[int, int]]:
        """Iterate over the stored ``(bit, length)`` runs in order."""
        return self._runs_from(self._root)

    def to_list(self) -> List[int]:
        out: List[int] = []
        for bit, length in self.runs():
            out.extend([bit] * length)
        return out

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Compressed payload: gamma codes of the runs plus one bit per run.

        This is the RLE+gamma size of Theorem 4.9 -- the quantity the space
        experiments report.  The pointer overhead of the balanced tree is
        reported separately by :meth:`overhead_bits`.
        """
        total = 0
        for _, length in self.runs():
            total += gamma_code_length(length) + 1
        return total + 64

    def overhead_bits(self, pointer_bits: int = 64) -> int:
        """Pointer/bookkeeping overhead of the balanced tree (engineering cost)."""
        # left, right, priority, lengths and aggregates: ~6 words per node.
        return self.run_count * 6 * pointer_bits
