"""Rank/select bitvectors (Fully Indexable Dictionaries), static and dynamic.

This package implements every bitvector flavour used in the paper:

* :class:`~repro.bitvector.plain.PlainBitVector` -- uncompressed, O(1) rank and
  near-O(1) select, used as a baseline and inside other structures;
* :class:`~repro.bitvector.rrr.RRRBitVector` -- the RRR compressed bitvector of
  Raman, Raman & Rao, ``B(m, n) + o(n)`` bits (paper Section 2);
* :class:`~repro.bitvector.rle.RLEBitVector` -- static run-length + Elias gamma
  encoding, as used in practical FID implementations;
* :class:`~repro.bitvector.sparse.EliasFanoSequence` and
  :class:`~repro.bitvector.sparse.SparseBitVector` -- monotone sequences /
  sparse bitvectors used as partial-sum delimiters;
* :class:`~repro.bitvector.append_only.AppendOnlyBitVector` -- the paper's
  Section 4.1 append-only bitvector (Theorem 4.5);
* :class:`~repro.bitvector.dynamic.DynamicBitVector` -- the paper's Section 4.2
  fully-dynamic RLE+gamma bitvector supporting ``Init`` (Theorem 4.9).
"""

from repro.bitvector.append_only import AppendOnlyBitVector
from repro.bitvector.base import BitVector, StaticBitVector
from repro.bitvector.dynamic import DynamicBitVector
from repro.bitvector.gap import GapEncodedBitVector
from repro.bitvector.plain import PlainBitVector
from repro.bitvector.rle import RLEBitVector
from repro.bitvector.rrr import IncrementalRRRBuilder, RRRBitVector
from repro.bitvector.sparse import EliasFanoSequence, SparseBitVector

__all__ = [
    "AppendOnlyBitVector",
    "BitVector",
    "DynamicBitVector",
    "EliasFanoSequence",
    "GapEncodedBitVector",
    "IncrementalRRRBuilder",
    "PlainBitVector",
    "RLEBitVector",
    "RRRBitVector",
    "SparseBitVector",
    "StaticBitVector",
]
