"""Succinct static Patricia trie (paper Theorem 3.6).

The static Wavelet Trie stores its trie component as:

* the tree topology in a DFUDS encoding (``2k + o(k)`` bits);
* the node labels ``alpha`` concatenated in depth-first order in a single
  bitvector ``L``;
* a partial-sum structure delimiting the labels inside ``L``
  (``B(e, |L| + e) + o(...)`` bits).

The total is the information-theoretic lower bound ``LT(Sset)`` of Ferragina
et al. plus negligible terms.  This module builds that representation from a
:class:`~repro.tries.patricia.PatriciaTrie` (or directly from a key set),
supports navigation and prefix search, and reports the exact space breakdown
used by the ``T1-SPACE`` experiment.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.bits.bitbuffer import BitBuffer
from repro.bits.bitstring import Bits
from repro.bitvector.plain import PlainBitVector
from repro.exceptions import ValueNotFoundError
from repro.succinct.dfuds import DFUDSTree
from repro.succinct.partial_sums import StaticPartialSums
from repro.tries.patricia import PatriciaNode, PatriciaTrie
from repro.analysis.entropy import binomial_lower_bound

__all__ = ["SuccinctPatriciaTrie"]


class SuccinctPatriciaTrie:
    """DFUDS-encoded Patricia trie with concatenated labels.

    Nodes are identified by their preorder rank (root = 0), matching the
    DFUDS encoding.  The structure is immutable.
    """

    def __init__(self, trie: PatriciaTrie) -> None:
        if trie.root is None:
            raise ValueError("cannot encode an empty trie")
        # Collect nodes in preorder, recording labels and degrees.
        labels: List[Bits] = []
        degrees: List[int] = []
        order: List[PatriciaNode] = []
        stack: List[PatriciaNode] = [trie.root]
        while stack:
            node = stack.pop()
            order.append(node)
            labels.append(node.label)
            degree = sum(1 for child in node.children if child is not None)
            degrees.append(degree)
            for bit in (1, 0):
                child = node.children[bit]
                if child is not None:
                    stack.append(child)
        self._dfuds = DFUDSTree.from_degrees(degrees)
        buffer = BitBuffer()
        for label in labels:
            buffer.append_bits(label)
        self._labels = PlainBitVector(buffer.to_bits())
        self._label_offsets = StaticPartialSums(len(label) for label in labels)
        self._key_count = sum(1 for degree in degrees if degree == 0)

    # ------------------------------------------------------------------
    @classmethod
    def from_keys(cls, keys: Iterable[Bits]) -> "SuccinctPatriciaTrie":
        """Build from a prefix-free set of keys."""
        return cls(PatriciaTrie(keys))

    # ------------------------------------------------------------------
    # Topology / labels
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of trie nodes."""
        return self._dfuds.node_count

    @property
    def key_count(self) -> int:
        """Number of stored keys (= leaves)."""
        return self._key_count

    def degree(self, node: int) -> int:
        """Number of children of ``node`` (0 or 2 for a Patricia trie)."""
        return self._dfuds.degree(node)

    def is_leaf(self, node: int) -> bool:
        """True if ``node`` is a leaf."""
        return self._dfuds.is_leaf(node)

    def child(self, node: int, bit: int) -> int:
        """The ``bit``-labelled child of an internal ``node``."""
        return self._dfuds.child(node, bit)

    def parent(self, node: int) -> int:
        """Parent of ``node``."""
        return self._dfuds.parent(node)

    def label(self, node: int) -> Bits:
        """The label ``alpha`` of ``node``, extracted from ``L``."""
        start = self._label_offsets.start(node)
        length = self._label_offsets.length(node)
        if length == 0:
            return Bits.empty()
        buffer = BitBuffer()
        for bit in self._labels.iter_range(start, start + length):
            buffer.append(bit)
        return buffer.to_bits()

    # ------------------------------------------------------------------
    # Searching
    # ------------------------------------------------------------------
    def search(self, key: Bits) -> Tuple[int, int]:
        """Locate ``key``; returns ``(leaf_node, internal_nodes_on_path)``.

        Raises :class:`ValueNotFoundError` if the key is not stored.
        """
        node = 0
        depth = 0
        height = 0
        while True:
            label = self.label(node)
            remaining = key.suffix_from(depth)
            if self.is_leaf(node):
                if remaining != label:
                    raise ValueNotFoundError(f"key {key!r} not in trie")
                return node, height
            if not remaining.startswith(label):
                raise ValueNotFoundError(f"key {key!r} not in trie")
            height += 1
            depth += len(label)
            if depth >= len(key):
                raise ValueNotFoundError(f"key {key!r} not in trie")
            bit = key[depth]
            depth += 1
            node = self.child(node, bit)

    def find_prefix(self, prefix: Bits) -> Optional[Tuple[int, int]]:
        """Highest node whose subtree holds exactly the keys with ``prefix``.

        Returns ``(node, consumed_bits)`` or None when no key has the prefix.
        """
        node = 0
        depth = 0
        while True:
            remaining = prefix.suffix_from(depth)
            if len(remaining) == 0:
                return node, depth
            label = self.label(node)
            lcp = remaining.lcp_length(label)
            if lcp == len(remaining):
                return node, depth
            if lcp < len(label) or self.is_leaf(node):
                return None
            depth += len(label)
            bit = prefix[depth]
            depth += 1
            node = self.child(node, bit)

    def keys(self) -> Iterator[Bits]:
        """Enumerate the stored keys in DFS order."""
        def walk(node: int, prefix: Bits) -> Iterator[Bits]:
            current = prefix + self.label(node)
            if self.is_leaf(node):
                yield current
                return
            for bit in (0, 1):
                yield from walk(self.child(node, bit), current.appended(bit))

        yield from walk(0, Bits.empty())

    # ------------------------------------------------------------------
    # Space accounting (Theorem 3.6)
    # ------------------------------------------------------------------
    def label_bits(self) -> int:
        """``|L|``: total label length in bits."""
        return self._label_offsets.total

    def edge_count(self) -> int:
        """``e = 2(|Sset| - 1)``."""
        return self.node_count - 1

    def lt_lower_bound(self) -> float:
        """The lower bound ``LT(Sset) = |L| + e + B(e, |L| + e)`` in bits."""
        label_bits = self.label_bits()
        edges = self.edge_count()
        return label_bits + edges + binomial_lower_bound(edges, label_bits + edges)

    def size_in_bits(self) -> int:
        """Measured size: DFUDS topology + labels + label delimiters."""
        return (
            self._dfuds.size_in_bits()
            + self._labels.size_in_bits()
            + self._label_offsets.size_in_bits()
        )

    def space_breakdown(self) -> dict:
        """Per-component sizes in bits, for EXPERIMENTS.md tables."""
        return {
            "topology_dfuds": self._dfuds.size_in_bits(),
            "labels": self._labels.size_in_bits(),
            "label_delimiters": self._label_offsets.size_in_bits(),
            "lt_lower_bound": self.lt_lower_bound(),
        }
