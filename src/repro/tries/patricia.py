"""Dynamic binary Patricia trie (paper Section 2 and Appendix B).

The trie stores a *prefix-free* set of binary strings (:class:`Bits` values).
Each node carries a label; internal nodes have exactly two children, reached
by the bit following the label (0 to the left, 1 to the right).  The
concatenation of labels and branching bits along a root-to-leaf path spells a
stored string.

Supported operations match Lemma 4.1 / Appendix B of the paper:

* navigation and lookups in ``O(|s|)`` bit comparisons (big-int accelerated);
* ``insert`` of a new string in ``O(|s|)``, splitting one node and adding one
  leaf;
* ``delete`` of a stored string in ``O(l̂)``, removing one leaf and merging
  its parent with the sibling;
* statistics needed by the space analysis: number of nodes/edges, total label
  length ``|L|`` and per-string path height ``h_s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.bits.bitstring import Bits
from repro.exceptions import ValueNotFoundError

__all__ = ["PatriciaNode", "PatriciaTrie"]


@dataclass
class PatriciaNode:
    """A node of the Patricia trie.

    ``children`` is ``[left, right]`` for internal nodes and ``[None, None]``
    for leaves.  The label is the longest common prefix of all strings below
    the node, relative to the parent's position (paper Definition of the
    Patricia trie, Section 2).
    """

    label: Bits
    children: List[Optional["PatriciaNode"]] = field(
        default_factory=lambda: [None, None]
    )
    parent: Optional["PatriciaNode"] = None
    parent_bit: int = 0

    @property
    def is_leaf(self) -> bool:
        """True if the node has no children."""
        return self.children[0] is None and self.children[1] is None

    def attach(self, bit: int, child: "PatriciaNode") -> None:
        """Attach ``child`` as the ``bit``-labelled child."""
        self.children[bit] = child
        child.parent = self
        child.parent_bit = bit


class PatriciaTrie:
    """A dynamic Patricia trie over a prefix-free set of :class:`Bits` keys."""

    def __init__(self, keys: Iterable[Bits] = ()) -> None:
        self._root: Optional[PatriciaNode] = None
        self._size = 0
        for key in keys:
            self.insert(key)

    # ------------------------------------------------------------------
    # Size and iteration
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def root(self) -> Optional[PatriciaNode]:
        """The root node (None when the trie is empty)."""
        return self._root

    def __iter__(self) -> Iterator[Bits]:
        return self.keys()

    def keys(self) -> Iterator[Bits]:
        """Iterate over all stored keys in lexicographic (DFS) order."""
        def walk(node: PatriciaNode, prefix: Bits) -> Iterator[Bits]:
            current = prefix + node.label
            if node.is_leaf:
                yield current
                return
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    yield from walk(child, current.appended(bit))

        if self._root is not None:
            yield from walk(self._root, Bits.empty())

    def nodes(self) -> Iterator[PatriciaNode]:
        """Iterate over all nodes in preorder."""
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            yield node
            for bit in (1, 0):
                child = node.children[bit]
                if child is not None:
                    stack.append(child)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def __contains__(self, key: Bits) -> bool:
        return self.contains(key)

    def contains(self, key: Bits) -> bool:
        """True if ``key`` is stored in the trie."""
        try:
            self._locate_leaf(key)
        except ValueNotFoundError:
            return False
        return True

    def find_prefix(self, prefix: Bits) -> Optional[Tuple[PatriciaNode, int]]:
        """Locate the highest node whose subtree holds exactly the keys with ``prefix``.

        Returns ``(node, depth)`` where ``depth`` is the number of prefix bits
        consumed before the node's label, or None if no stored key has the
        prefix.  This is the ``n_p`` node used by RankPrefix/SelectPrefix
        (paper Lemma 3.3).
        """
        if self._root is None:
            return None
        node = self._root
        depth = 0
        while True:
            remaining = prefix.suffix_from(depth)
            if len(remaining) == 0:
                return node, depth
            label = node.label
            lcp = remaining.lcp_length(label)
            if lcp == len(remaining):
                return node, depth
            if lcp < len(label):
                return None
            depth += len(label)
            bit = prefix[depth]
            depth += 1
            child = node.children[bit]
            if child is None:
                return None
            node = child

    def height_of(self, key: Bits) -> int:
        """Number of internal nodes on the root-to-leaf path of ``key`` (h_s)."""
        if self._root is None:
            raise ValueNotFoundError(f"key {key!r} not in trie")
        node = self._root
        depth = 0
        internal = 0
        while True:
            label = node.label
            remaining = key.suffix_from(depth)
            if node.is_leaf:
                if remaining != label:
                    raise ValueNotFoundError(f"key {key!r} not in trie")
                return internal
            if not remaining.startswith(label):
                raise ValueNotFoundError(f"key {key!r} not in trie")
            internal += 1
            depth += len(label)
            bit = key[depth]
            depth += 1
            child = node.children[bit]
            if child is None:
                raise ValueNotFoundError(f"key {key!r} not in trie")
            node = child

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, key: Bits) -> bool:
        """Insert ``key``; returns True if it was new, False if already present.

        A new key splits exactly one existing node and adds one leaf
        (paper Appendix B), in ``O(|key|)`` time.
        """
        if self._root is None:
            self._root = PatriciaNode(label=key)
            self._size = 1
            return True
        node = self._root
        depth = 0
        while True:
            label = node.label
            remaining = key.suffix_from(depth)
            lcp = remaining.lcp_length(label)
            if lcp == len(label) and not node.is_leaf:
                depth += len(label)
                if depth >= len(key):
                    raise ValueError(
                        "insertion would violate prefix-freeness (key is a "
                        "proper prefix of a stored key)"
                    )
                bit = key[depth]
                depth += 1
                node = node.children[bit]
                continue
            if node.is_leaf and lcp == len(label) and lcp == len(remaining):
                return False  # already stored
            if lcp == len(remaining) or (node.is_leaf and lcp == len(label)):
                raise ValueError(
                    "insertion would violate prefix-freeness"
                )
            # Split `node`: new internal node with the common prefix.
            self._split_node(node, lcp, remaining)
            self._size += 1
            return True

    def _split_node(self, node: PatriciaNode, lcp: int, remaining: Bits) -> PatriciaNode:
        """Split ``node`` at label offset ``lcp`` and add a leaf for ``remaining``.

        Returns the newly created internal node.
        """
        old_bit = node.label[lcp]
        new_bit = remaining[lcp]
        if old_bit == new_bit:  # pragma: no cover - guarded by lcp definition
            raise AssertionError("split point must separate the two keys")
        new_internal = PatriciaNode(label=node.label.prefix(lcp))
        parent = node.parent
        parent_bit = node.parent_bit
        # The old node keeps its children/identity but loses the shared prefix
        # and the branching bit.
        node.label = node.label.suffix_from(lcp + 1)
        new_leaf = PatriciaNode(label=remaining.suffix_from(lcp + 1))
        new_internal.attach(old_bit, node)
        new_internal.attach(new_bit, new_leaf)
        if parent is None:
            self._root = new_internal
            new_internal.parent = None
        else:
            parent.attach(parent_bit, new_internal)
        return new_internal

    def delete(self, key: Bits) -> None:
        """Remove ``key``; its leaf and parent are deleted and the sibling merged.

        Raises :class:`ValueNotFoundError` if the key is not stored.
        """
        leaf, depth = self._locate_leaf(key)
        parent = leaf.parent
        if parent is None:
            # The key was the only one.
            self._root = None
            self._size = 0
            return
        sibling = parent.children[1 - leaf.parent_bit]
        assert sibling is not None
        merged_label = parent.label.appended(sibling.parent_bit) + sibling.label
        sibling.label = merged_label
        grandparent = parent.parent
        if grandparent is None:
            self._root = sibling
            sibling.parent = None
        else:
            grandparent.attach(parent.parent_bit, sibling)
        self._size -= 1

    def _locate_leaf(self, key: Bits) -> Tuple[PatriciaNode, int]:
        """Find the leaf storing ``key`` or raise."""
        if self._root is None:
            raise ValueNotFoundError(f"key {key!r} not in trie")
        node = self._root
        depth = 0
        while True:
            label = node.label
            remaining = key.suffix_from(depth)
            if node.is_leaf:
                if remaining != label:
                    raise ValueNotFoundError(f"key {key!r} not in trie")
                return node, depth
            if not remaining.startswith(label):
                raise ValueNotFoundError(f"key {key!r} not in trie")
            depth += len(label)
            if depth >= len(key):
                raise ValueNotFoundError(f"key {key!r} not in trie")
            bit = key[depth]
            depth += 1
            child = node.children[bit]
            if child is None:
                raise ValueNotFoundError(f"key {key!r} not in trie")
            node = child

    # ------------------------------------------------------------------
    # Statistics for the space analysis (Theorem 3.6 / Lemma 4.1)
    # ------------------------------------------------------------------
    def node_count(self) -> int:
        """Total number of nodes (2|Sset| - 1 for |Sset| >= 1)."""
        return sum(1 for _ in self.nodes())

    def internal_count(self) -> int:
        """Number of internal nodes (|Sset| - 1)."""
        return sum(1 for node in self.nodes() if not node.is_leaf)

    def edge_count(self) -> int:
        """Number of edges ``e = 2(|Sset| - 1)``."""
        count = self.node_count()
        return count - 1 if count else 0

    def label_bits(self) -> int:
        """Total length ``|L|`` of all node labels, in bits."""
        return sum(len(node.label) for node in self.nodes())

    def longest_key_bits(self) -> int:
        """Length in bits of the longest stored key (the paper's l̂)."""
        return max((len(key) for key in self.keys()), default=0)

    def pointer_bits(self, word: int = 64) -> int:
        """Pointer-machine space ``O(k w)`` of Lemma 4.1 (4 words per node)."""
        return self.node_count() * 4 * word

    def size_in_bits(self, word: int = 64) -> int:
        """Total dynamic-trie space: pointers plus labels (Lemma 4.1)."""
        return self.pointer_bits(word) + self.label_bits()
