"""Patricia tries and string binarisation.

The Wavelet Trie is a Wavelet Tree shaped like the Patricia trie of the
distinct strings.  This package provides:

* :mod:`repro.tries.binarize` -- codecs mapping application values
  (``str``, ``bytes``, ``int``) to the prefix-free binary strings
  (:class:`~repro.bits.bitstring.Bits`) the data structure operates on;
* :class:`~repro.tries.patricia.PatriciaTrie` -- the dynamic, pointer-based
  Patricia trie of the paper's Appendix B;
* :class:`~repro.tries.static_patricia.SuccinctPatriciaTrie` -- the static
  DFUDS-encoded trie with concatenated labels of Theorem 3.6.
"""

from repro.tries.binarize import (
    BytesCodec,
    FixedWidthIntCodec,
    StringCodec,
    Utf8Codec,
    default_codec,
)
from repro.tries.patricia import PatriciaTrie
from repro.tries.static_patricia import SuccinctPatriciaTrie

__all__ = [
    "BytesCodec",
    "FixedWidthIntCodec",
    "PatriciaTrie",
    "StringCodec",
    "SuccinctPatriciaTrie",
    "Utf8Codec",
    "default_codec",
]
