"""Binarisation codecs: application values <-> prefix-free bit-strings.

The paper (Sections 2 and 3) assumes without loss of generality that the
indexed values are *binary* strings forming a *prefix-free* set: any alphabet
can be binarised, and any set can be made prefix-free by appending a
terminator.  These codecs implement exactly that reduction and its inverse,
plus the prefix-query variant (a prefix is binarised *without* the
terminator so that ``RankPrefix``/``SelectPrefix`` see every completion).

* :class:`Utf8Codec` -- text strings; each UTF-8 byte becomes 8 bits and a NUL
  byte (8 zero bits) terminates the string.  Input must not contain NUL.
* :class:`BytesCodec` -- arbitrary byte strings; each byte becomes 9 bits
  (a 1 marker followed by the byte) and a single 0 bit terminates, so the
  encoding is prefix-free even when values contain NUL bytes.
* :class:`FixedWidthIntCodec` -- integers in a bounded universe, encoded with
  a fixed number of bits (fixed-length codes are prefix-free by themselves);
  supports the LSB-first bit order used by the Section 6 hashing scheme.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.bits.bitstring import Bits
from repro.exceptions import BinarizationError

__all__ = [
    "BytesCodec",
    "FixedWidthIntCodec",
    "StringCodec",
    "Utf8Codec",
    "default_codec",
]


class StringCodec(ABC):
    """Maps application-level values to prefix-free :class:`Bits` and back."""

    @abstractmethod
    def to_bits(self, value: Any) -> Bits:
        """Binarise a full value (prefix-free encoding, including terminator)."""

    @abstractmethod
    def from_bits(self, bits: Bits) -> Any:
        """Invert :meth:`to_bits`."""

    @abstractmethod
    def prefix_to_bits(self, prefix: Any) -> Bits:
        """Binarise a *prefix* (no terminator) for RankPrefix/SelectPrefix."""

    def value_length_in_bits(self, value: Any) -> int:
        """Length in bits of the binarised value (used by analysis code)."""
        return len(self.to_bits(value))


class Utf8Codec(StringCodec):
    """Text codec: UTF-8 bytes, 8 bits per byte, NUL terminator.

    The encoded set is prefix-free because no encoded byte is ``0x00`` while
    every encoded value ends with ``0x00``.
    """

    terminator = Bits.zeros(8)

    def to_bits(self, value: str) -> Bits:
        if not isinstance(value, str):
            raise BinarizationError(f"Utf8Codec expects str, got {type(value).__name__}")
        raw = value.encode("utf-8")
        if 0 in raw:
            raise BinarizationError("Utf8Codec values must not contain NUL bytes")
        return Bits.from_bytes(raw) + self.terminator

    def from_bits(self, bits: Bits) -> str:
        if len(bits) % 8 or len(bits) < 8:
            raise BinarizationError(
                f"bit length {len(bits)} is not a valid Utf8Codec encoding"
            )
        payload = bits.to_bytes()
        if payload[-1] != 0:
            raise BinarizationError("missing NUL terminator")
        return payload[:-1].decode("utf-8")

    def prefix_to_bits(self, prefix: str) -> Bits:
        if not isinstance(prefix, str):
            raise BinarizationError(f"Utf8Codec expects str, got {type(prefix).__name__}")
        raw = prefix.encode("utf-8")
        if 0 in raw:
            raise BinarizationError("Utf8Codec prefixes must not contain NUL bytes")
        return Bits.from_bytes(raw)


class BytesCodec(StringCodec):
    """Arbitrary byte strings: 9 bits per byte (1 + byte), 0-bit terminator."""

    def to_bits(self, value: bytes) -> Bits:
        if not isinstance(value, (bytes, bytearray)):
            raise BinarizationError(
                f"BytesCodec expects bytes, got {type(value).__name__}"
            )
        out = Bits.empty()
        for byte in value:
            out = out + Bits(1, 1) + Bits(byte, 8)
        return out + Bits(0, 1)

    def from_bits(self, bits: Bits) -> bytes:
        out = bytearray()
        position = 0
        while position < len(bits):
            marker = bits[position]
            if marker == 0:
                if position != len(bits) - 1:
                    raise BinarizationError("terminator before end of encoding")
                return bytes(out)
            if position + 9 > len(bits):
                raise BinarizationError("truncated BytesCodec encoding")
            out.append(bits.slice(position + 1, position + 9).value)
            position += 9
        raise BinarizationError("missing terminator in BytesCodec encoding")

    def prefix_to_bits(self, prefix: bytes) -> Bits:
        if not isinstance(prefix, (bytes, bytearray)):
            raise BinarizationError(
                f"BytesCodec expects bytes, got {type(prefix).__name__}"
            )
        out = Bits.empty()
        for byte in prefix:
            out = out + Bits(1, 1) + Bits(byte, 8)
        return out


class FixedWidthIntCodec(StringCodec):
    """Integers in ``[0, 2**width)`` encoded with exactly ``width`` bits.

    Fixed-length codes are prefix-free, so no terminator is needed.  With
    ``lsb_first=True`` the bits are written least-significant-bit first, the
    order used by the multiplicative-hashing scheme of Section 6 (so that the
    distinguishing bits of the hashes appear near the trie root).
    """

    def __init__(self, width: int, lsb_first: bool = False) -> None:
        if width <= 0:
            raise BinarizationError("width must be positive")
        self.width = width
        self.lsb_first = lsb_first

    def to_bits(self, value: int) -> Bits:
        if not isinstance(value, int) or isinstance(value, bool):
            raise BinarizationError(
                f"FixedWidthIntCodec expects int, got {type(value).__name__}"
            )
        if not 0 <= value < (1 << self.width):
            raise BinarizationError(
                f"value {value} out of range for width {self.width}"
            )
        if self.lsb_first:
            value = _reverse_bits(value, self.width)
        return Bits(value, self.width)

    def from_bits(self, bits: Bits) -> int:
        if len(bits) != self.width:
            raise BinarizationError(
                f"expected {self.width} bits, got {len(bits)}"
            )
        value = bits.value
        if self.lsb_first:
            value = _reverse_bits(value, self.width)
        return value

    def prefix_to_bits(self, prefix: Bits) -> Bits:
        """Prefixes of fixed-width integers are given directly as bits."""
        if not isinstance(prefix, Bits):
            raise BinarizationError("integer prefixes must be Bits values")
        return prefix


def _reverse_bits(value: int, width: int) -> int:
    """Reverse the ``width`` low-order bits of ``value``."""
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def default_codec() -> StringCodec:
    """The codec used by the public API when none is supplied (UTF-8 text)."""
    return Utf8Codec()
